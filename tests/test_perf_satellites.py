"""Regression tests for the PR-4 performance satellites.

* cached reference squared norms in the NN classifier / query engine
  (``references_sq`` fast path of :func:`pairwise_interval_distances`);
* the vectorized K-means centroid update (one membership matmul instead of a
  Python loop over clusters), pinned to the loop implementation's labels on
  fixed seeds;
* the tunable ``exact``-kernel mixed-chunk bound (keyword +
  ``REPRO_MIXED_CHUNK_ELEMENTS`` environment variable) and the skip of the
  mixed-sign machinery for sign-consistent left operands.
"""

import numpy as np
import pytest

from repro.eval.kmeans import IntervalKMeans
from repro.eval.knn import (
    IntervalNearestNeighbor,
    pairwise_interval_distances,
    reference_squared_norms,
)
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import (
    MIXED_CHUNK_ENV,
    resolve_mixed_chunk_elements,
)
from repro.interval.linalg import interval_matmul
from repro.interval.random import random_interval_matrix
from repro.interval.scalar import IntervalError


class TestReferenceNormCaching:
    def _features(self, seed, rows=12, rank=4):
        return random_interval_matrix((rows, rank), interval_density=1.0,
                                      interval_intensity=0.7, rng=seed)

    def test_fast_path_is_byte_identical_to_recomputation(self):
        queries = self._features(0, rows=5)
        references = self._features(1)
        cached = reference_squared_norms(references)
        baseline = pairwise_interval_distances(queries, references)
        fast = pairwise_interval_distances(queries, references,
                                           references_sq=cached)
        assert fast.tobytes() == baseline.tobytes()

    def test_wrong_shape_references_sq_raises(self):
        queries = self._features(0, rows=5)
        references = self._features(1)
        with pytest.raises(ValueError, match="references_sq"):
            pairwise_interval_distances(queries, references,
                                        references_sq=np.zeros(3))

    def test_nn_classifier_caches_norms_at_fit_time(self):
        references = self._features(2)
        labels = np.arange(12) % 3
        classifier = IntervalNearestNeighbor().fit(references, labels)
        assert classifier._features_sq is not None
        assert classifier._features_sq.shape == (12,)
        # Predictions are unchanged by the caching.
        queries = self._features(3, rows=6)
        predictions = classifier.predict(queries)
        brute = []
        stacked_refs = np.hstack([references.lower, references.upper])
        stacked_queries = np.hstack([queries.lower, queries.upper])
        for row in stacked_queries:
            brute.append(labels[np.argmin(((stacked_refs - row) ** 2).sum(axis=1))])
        np.testing.assert_array_equal(predictions, np.asarray(brute))

    def test_query_engine_precomputes_and_uses_cached_norms(self, monkeypatch):
        from repro.core.isvd import isvd
        from repro.serve.query import QueryEngine
        import repro.serve.query as query_module

        matrix = random_interval_matrix((15, 9), interval_density=1.0,
                                        interval_intensity=0.6, rng=4)
        engine = QueryEngine(isvd(matrix, 3, method="isvd3", target="b"))
        assert engine._references_sq.shape == (15,)

        seen = {}
        original = query_module.pairwise_interval_squared_distances

        def spy(queries, references, matmul=None, references_sq=None):
            seen["references_sq"] = references_sq
            return original(queries, references, matmul=matmul,
                            references_sq=references_sq)

        monkeypatch.setattr(query_module,
                            "pairwise_interval_squared_distances", spy)
        engine.neighbor_distances(matrix.row(0))
        assert seen["references_sq"] is engine._references_sq


class TestVectorizedKMeans:
    @staticmethod
    def _loop_lloyd(model: IntervalKMeans, points: np.ndarray,
                    centers: np.ndarray) -> np.ndarray:
        """The pre-vectorization Lloyd iteration, kept as the reference."""
        labels = np.zeros(points.shape[0], dtype=int)
        for _ in range(model.max_iter):
            distances = (
                (points**2).sum(axis=1, keepdims=True)
                - 2.0 * points @ centers.T
                + (centers**2).sum(axis=1)
            )
            labels = np.argmin(distances, axis=1)
            new_centers = centers.copy()
            for k in range(model.n_clusters):
                members = points[labels == k]
                if members.shape[0] > 0:
                    new_centers[k] = members.mean(axis=0)
            movement = float(np.linalg.norm(new_centers - centers))
            centers = new_centers
            if movement <= model.tol:
                break
        return labels

    @pytest.mark.parametrize("seed", [0, 7, 42])
    def test_labels_identical_to_loop_implementation(self, seed):
        rng = np.random.default_rng(seed)
        # Well-separated blobs: the fixture the satellite pins.
        blobs = [rng.normal(loc=center, scale=0.4, size=(30, 5))
                 for center in (-6.0, 0.0, 6.0, 12.0)]
        points = np.vstack(blobs)
        model = IntervalKMeans(n_clusters=4, n_init=1, seed=seed)
        init_rng = np.random.default_rng(seed)
        centers = model._plus_plus_init(points, init_rng)
        expected = self._loop_lloyd(model, points, centers.copy())
        labels, _, _ = model._lloyd(points, centers.copy())
        np.testing.assert_array_equal(labels, expected)

    def test_empty_clusters_keep_previous_centers(self):
        # Two coincident far-apart blobs but K=3: one center will end up
        # empty after the first assignment and must survive unchanged.
        points = np.vstack([np.full((10, 2), -5.0), np.full((10, 2), 5.0)])
        model = IntervalKMeans(n_clusters=3, n_init=1, seed=0)
        centers = np.array([[-5.0, -5.0], [5.0, 5.0], [100.0, 100.0]])
        labels, final_centers, _ = model._lloyd(points, centers)
        assert set(labels) == {0, 1}
        np.testing.assert_array_equal(final_centers[2], [100.0, 100.0])

    def test_fit_end_to_end_still_clusters(self):
        rng = np.random.default_rng(1)
        points = np.vstack([rng.normal(-4, 0.3, (20, 3)),
                            rng.normal(4, 0.3, (20, 3))])
        labels = IntervalKMeans(n_clusters=2, seed=0).fit_predict(points)
        assert len(set(labels[:20])) == 1 and len(set(labels[20:])) == 1
        assert labels[0] != labels[20]

    def test_interval_features_still_supported(self):
        features = random_interval_matrix((24, 4), interval_density=1.0,
                                          interval_intensity=0.5, rng=2)
        model = IntervalKMeans(n_clusters=3, seed=5).fit(features)
        assert model.labels_.shape == (24,)
        assert model.inertia_ >= 0.0


class TestMixedChunkTuning:
    MIXED = IntervalMatrix(np.full((6, 7), -1.0), np.full((6, 7), 1.0))

    def test_default_resolution(self, monkeypatch):
        monkeypatch.delenv(MIXED_CHUNK_ENV, raising=False)
        from repro.interval.kernels import _MIXED_CHUNK_ELEMENTS

        assert resolve_mixed_chunk_elements() == _MIXED_CHUNK_ELEMENTS

    def test_env_var_overrides_default(self, monkeypatch):
        monkeypatch.setenv(MIXED_CHUNK_ENV, "123")
        assert resolve_mixed_chunk_elements() == 123

    def test_keyword_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(MIXED_CHUNK_ENV, "123")
        assert resolve_mixed_chunk_elements(77) == 77

    @pytest.mark.parametrize("bad", ["0", "-3", "two"])
    def test_invalid_env_values_raise(self, monkeypatch, bad):
        monkeypatch.setenv(MIXED_CHUNK_ENV, bad)
        with pytest.raises(IntervalError):
            resolve_mixed_chunk_elements()

    def test_chunk_size_does_not_change_exact_results(self, monkeypatch):
        b = IntervalMatrix(np.full((7, 5), -2.0), np.full((7, 5), 2.0))
        reference = interval_matmul(self.MIXED, b, kernel="exact")
        # Chunk of 1 element forces one column per iteration of the
        # correction loop; a huge chunk collapses it to a single pass.
        for chunk in (1, 10, 10**9):
            result = interval_matmul(self.MIXED, b, kernel="exact",
                                     mixed_chunk_elements=chunk)
            assert result.lower.tobytes() == reference.lower.tobytes()
            assert result.upper.tobytes() == reference.upper.tobytes()
        monkeypatch.setenv(MIXED_CHUNK_ENV, "2")
        via_env = interval_matmul(self.MIXED, b, kernel="exact")
        assert via_env.lower.tobytes() == reference.lower.tobytes()

    def test_sign_consistent_left_operand_skips_mixed_machinery(self, monkeypatch):
        # A tiny chunk bound would make the mixed x mixed loop astronomically
        # slow if it ran; with a sign-consistent left operand it must not run
        # at all, so this stays instant and correct.
        monkeypatch.setenv(MIXED_CHUNK_ENV, "1")
        rng = np.random.default_rng(3)
        a_lo = rng.random((5, 6)) + 0.5
        a = IntervalMatrix(a_lo, a_lo + rng.random((5, 6)))
        b = IntervalMatrix(np.full((6, 4), -1.0), np.full((6, 4), 1.0))
        result = interval_matmul(a, b, kernel="exact")
        e4 = interval_matmul(a, b, kernel="endpoint4")
        # Sign-consistent left x anything: endpoint4 equals the hull only
        # entrywise-sound cases; here just assert soundness containment.
        assert result.contains(e4, tol=1e-9)
