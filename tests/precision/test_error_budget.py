"""End-to-end error budgets: low-precision engines vs the float64 reference.

Each test fits the same interval model twice — once at float64 (the
reference) and once under a low-precision policy (``float32`` storage, or
``mixed``: float32 storage with float64 gram/fold-in accumulation) — then
drives the full serving surface (scores, top-k, nearest neighbours) through
:class:`~repro.serve.query.QueryEngine` and asserts every deviation against
the budgets declared in :mod:`budgets`.  No tolerance appears inline; see
that module for the calibration story.

The model family is deliberately well-conditioned (separated spectrum,
moderate interval radii): the budgets certify the *implementation*, not
the conditioning of adversarial inputs, and hypothesis varies the draw
within the family.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import budgets
from strategies import common_settings

from repro.core.isvd import isvd
from repro.interval.array import IntervalMatrix
from repro.serve.query import QueryEngine

RANK = 6
TOP_K = 5
#: (policy, QueryEngine fold-in accumulation dtype) pairs under budget.
POLICIES = (("float32", None), ("mixed", "float64"))

COMMON_SETTINGS = common_settings(max_examples=10)

model_seeds = st.integers(0, 10_000)


def make_model_matrix(seed, n_users=40, n_items=24, rank=RANK):
    """Well-conditioned low-rank interval matrix: separated spectrum,
    interval radii ~1% of the signal scale."""
    rng = np.random.default_rng(seed)
    user_factors = rng.normal(size=(n_users, rank))
    item_factors = rng.normal(size=(n_items, rank))
    spectrum = np.linspace(rank, 1.0, rank)
    base = (user_factors * spectrum) @ item_factors.T
    radius = rng.random(base.shape) * 0.05
    return IntervalMatrix(base - radius, base + radius)


def _engines(matrix, policy, accum_dtype):
    reference = QueryEngine(isvd(matrix, RANK, method="isvd4", target="b"))
    low = QueryEngine(
        isvd(matrix, RANK, method="isvd4", target="b", dtype=policy),
        accum_dtype=accum_dtype,
    )
    return reference, low


def _sigma_midpoints(decomposition):
    sigma = decomposition.sigma
    if isinstance(sigma, IntervalMatrix):
        sigma = sigma.midpoint()
    return np.sort(np.asarray(sigma, dtype=np.float64).ravel())[::-1]


def _mean_overlap(indices_a, indices_b):
    return float(np.mean([
        len(set(row_a) & set(row_b)) / len(row_a)
        for row_a, row_b in zip(indices_a, indices_b)
    ]))


@pytest.mark.parametrize("policy,accum_dtype", POLICIES)
class TestErrorBudget:
    @settings(**COMMON_SETTINGS)
    @given(model_seeds)
    def test_singular_values_within_budget(self, policy, accum_dtype, seed):
        matrix = make_model_matrix(seed)
        reference, low = _engines(matrix, policy, accum_dtype)
        sigma_ref = _sigma_midpoints(reference.decomposition)[:RANK]
        sigma_low = _sigma_midpoints(low.decomposition)[:RANK]
        relative = np.max(np.abs(sigma_low - sigma_ref) / np.abs(sigma_ref))
        assert relative <= budgets.SIGMA_RTOL[policy], (
            f"sigma deviation {relative:.3e} over budget "
            f"{budgets.SIGMA_RTOL[policy]:.1e} ({policy})"
        )

    @settings(**COMMON_SETTINGS)
    @given(model_seeds)
    def test_scores_within_budget(self, policy, accum_dtype, seed):
        matrix = make_model_matrix(seed)
        reference, low = _engines(matrix, policy, accum_dtype)
        scores_ref = reference.scores_for_users()
        scores_low = np.asarray(low.scores_for_users(), dtype=np.float64)
        relative = (np.max(np.abs(scores_low - scores_ref))
                    / np.max(np.abs(scores_ref)))
        assert relative <= budgets.SCORE_RTOL[policy], (
            f"score deviation {relative:.3e} over budget "
            f"{budgets.SCORE_RTOL[policy]:.1e} ({policy})"
        )

    @settings(**COMMON_SETTINGS)
    @given(model_seeds)
    def test_top_k_rank_fidelity(self, policy, accum_dtype, seed):
        matrix = make_model_matrix(seed)
        reference, low = _engines(matrix, policy, accum_dtype)
        users = list(range(10))
        topk_ref = reference.top_k_for_users(users, TOP_K)
        topk_low = low.top_k_for_users(users, TOP_K)
        overlap = _mean_overlap(topk_low.indices, topk_ref.indices)
        assert overlap >= budgets.TOPK_OVERLAP_MIN[policy], (
            f"top-{TOP_K} overlap {overlap:.3f} under floor "
            f"{budgets.TOPK_OVERLAP_MIN[policy]} ({policy})"
        )

    @settings(**COMMON_SETTINGS)
    @given(model_seeds)
    def test_nearest_neighbors_within_budget(self, policy, accum_dtype, seed):
        matrix = make_model_matrix(seed)
        reference, low = _engines(matrix, policy, accum_dtype)
        queries = matrix.midpoint()[:6]
        nn_ref = reference.nearest_neighbors(queries, TOP_K)
        nn_low = low.nearest_neighbors(queries, TOP_K)
        overlap = _mean_overlap(nn_low.indices, nn_ref.indices)
        assert overlap >= budgets.NN_OVERLAP_MIN[policy], (
            f"NN overlap {overlap:.3f} under floor "
            f"{budgets.NN_OVERLAP_MIN[policy]} ({policy})"
        )
        # Distances compare sorted so a budget failure reports magnitude
        # drift, not the (already asserted) set disagreement.
        distances_ref = np.sort(nn_ref.scores, axis=1)
        distances_low = np.sort(
            np.asarray(nn_low.scores, dtype=np.float64), axis=1)
        relative = (np.max(np.abs(distances_low - distances_ref))
                    / np.max(np.abs(distances_ref)))
        assert relative <= budgets.DISTANCE_RTOL[policy], (
            f"NN distance deviation {relative:.3e} over budget "
            f"{budgets.DISTANCE_RTOL[policy]:.1e} ({policy})"
        )

    @settings(**COMMON_SETTINGS)
    @given(model_seeds)
    def test_fold_in_scores_within_budget(self, policy, accum_dtype, seed):
        matrix = make_model_matrix(seed)
        reference, low = _engines(matrix, policy, accum_dtype)
        rows = matrix.midpoint()[-4:]
        folded_ref = reference.reconstruct_rows(rows)
        folded_low = np.asarray(low.reconstruct_rows(rows), dtype=np.float64)
        relative = (np.max(np.abs(folded_low - folded_ref))
                    / np.max(np.abs(folded_ref)))
        assert relative <= budgets.SCORE_RTOL[policy], (
            f"fold-in deviation {relative:.3e} over budget "
            f"{budgets.SCORE_RTOL[policy]:.1e} ({policy})"
        )


def test_kernel_product_budget_formula_matches_gamma():
    """The closed-form kernel budget is the documented gamma expression —
    a guard against the helper drifting from its own docstring."""
    inner_dim, magnitude = 12, 3.5
    expected = (budgets.PRODUCT_GAMMA_FACTOR
                * budgets.gamma(inner_dim + 8, budgets.EPS["float32"])
                * magnitude)
    assert budgets.product_budget(inner_dim, magnitude, "float32") == expected


def test_float32_storage_reduction():
    """The ~2x endpoint-storage headline, asserted on actual array bytes."""
    matrix = make_model_matrix(0)
    narrowed = matrix.astype(np.float32, outward=True)
    ratio = ((matrix.lower.nbytes + matrix.upper.nbytes)
             / (narrowed.lower.nbytes + narrowed.upper.nbytes))
    assert ratio >= budgets.STORAGE_REDUCTION_MIN
