"""Declared per-op error budgets for the low-precision modes.

This module is the **single auditable home** of every numeric tolerance the
precision tier asserts.  No test under ``tests/precision/`` may carry its
own atol/rtol: each assertion names a budget declared here, so loosening a
bound is a reviewable one-line diff with a paper trail, not a magic number
drifting in a test body.

Budget model
------------
For a reduction of length ``n`` accumulated in a dtype with unit roundoff
``eps``, the classical worst-case relative error of a dot product is::

    gamma_n = n * eps / (1 - n * eps)

(Higham, *Accuracy and Stability of Numerical Algorithms*, §3.5).  Exact
per-op budgets below are stated as safety multiples of ``gamma_n`` where
the op is a single reduction, and as empirically calibrated relative
errors (with documented headroom) where the op composes many reductions
through an SVD — singular subspaces are only conditionally stable, so no
closed form is honest there.

End-to-end budgets were calibrated against the float64 reference on the
suite's own model family (well-separated spectra, moderate interval
widths) and carry >= 4x headroom over the worst observed error; a failure
therefore means the implementation regressed, not that the draw was
unlucky.
"""

import numpy as np

#: Unit roundoff by storage dtype name.
EPS = {
    "float32": float(np.finfo(np.float32).eps),
    "float64": float(np.finfo(np.float64).eps),
}


def gamma(n_ops: int, eps: float) -> float:
    """Worst-case relative error bound of an ``n_ops``-term reduction."""
    product = n_ops * eps
    return product / (1.0 - product)


# --------------------------------------------------------------------- #
# Kernel-level budgets (single reduction; closed-form bound applies)
# --------------------------------------------------------------------- #

#: Safety multiple of ``gamma_n * magnitude`` a float32 interval product's
#: endpoint may sit from the float64 reference endpoint.  4x covers the
#: endpoint combination (min/max over up to four products) on top of the
#: single-reduction bound.
PRODUCT_GAMMA_FACTOR = 4.0

#: Same bound for the gram fast path (one extra reduction of the diagonal).
GRAM_GAMMA_FACTOR = 4.0


def product_budget(inner_dim: int, magnitude: float, dtype: str) -> float:
    """Absolute tolerance for one interval-product endpoint at ``dtype``.

    ``magnitude`` is the largest |endpoint| product magnitude of the
    operands (``max|a| * max|b| * inner_dim`` is a safe caller-side value).
    """
    return PRODUCT_GAMMA_FACTOR * gamma(inner_dim + 8, EPS[dtype]) * magnitude


# --------------------------------------------------------------------- #
# End-to-end budgets (SVD-composed; empirically calibrated, documented)
# --------------------------------------------------------------------- #

#: Relative error of recommendation scores (fold-in reconstruction) against
#: the float64 reference engine, normalized by the score matrix's scale
#: (max |score|).  float32 carries the factorization itself in float32;
#: mixed recovers most of the gap by accumulating gram and fold-in least
#: squares in float64.
SCORE_RTOL = {
    "float32": 5e-6,
    "mixed": 5e-6,
}

#: Relative error of nearest-neighbour *distances* against the float64
#: reference, normalized by the largest reference distance.  Looser than
#: SCORE_RTOL because in-sample queries sit near their own reconstruction,
#: so small distances lose leading digits to cancellation (worst observed
#: on the calibration family: ~5e-4).
DISTANCE_RTOL = {
    "float32": 5e-3,
    "mixed": 5e-3,
}

#: Minimum mean top-k overlap (|intersection| / k) between the low-precision
#: engine's top-k item sets and the float64 reference's.  Rank inversions
#: happen exactly where two scores sit within SCORE_RTOL of each other, so
#: the floor is below 1.0 by design; on the calibration family the observed
#: overlap never fell below 1.0, so the floor carries ample slack for less
#: separated spectra.
TOPK_OVERLAP_MIN = {
    "float32": 0.9,
    "mixed": 0.9,
}

#: Same floor for nearest-neighbour candidate sets.
NN_OVERLAP_MIN = {
    "float32": 0.9,
    "mixed": 0.9,
}

#: Relative error of the singular values of a low-precision factorization
#: against the float64 reference (sorted, positionally compared).  Singular
#: *values* are perfectly conditioned (Weyl), so this budget is tight —
#: failures here point at the factorization plumbing, not at conditioning.
SIGMA_RTOL = {
    "float32": 3e-6,
    "mixed": 3e-6,
}

#: Storage-size ratio the float32 endpoint representation must achieve
#: against float64 (the "~2x storage reduction" headline; exactly 2.0 for
#: raw endpoint arrays).
STORAGE_REDUCTION_MIN = 1.9
