"""Enclosure soundness of the sound interval kernels at float32.

The ``exact`` and ``rump`` kernels promise *enclosures*: every member
product of the operand intervals lies inside the reported interval.  At
float32 that promise survives only because the kernels inflate their
endpoints by a directed-rounding-style pad (``enclosure_pad`` plus an
outward ``nextafter`` nudge).  These tests verify the promise rather than
assume it, two ways:

* **vertex hulls** — on tiny shapes the true product hull is computed by
  enumerating every endpoint vertex in float64 (the product is multilinear,
  so its range is attained at vertices); the float32 result must contain
  that hull outright;
* **Monte-Carlo members** — on regular shapes, random member matrices
  drawn inside the float32 boxes are multiplied in float64 and must land
  inside the float32 result.

The float64 reference's own rounding (~``eps64``) is orders of magnitude
below the float32 inflation (~``eps32``), so all containment assertions
are exact — no tolerance, by design.  ``endpoint4`` is deliberately
absent: it is documented as unsound at any precision.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import (
    brute_force_hull,
    common_settings,
    integer_interval_matrix,
    interval_matrix_params,
    matrix_params,
    random_interval_pair,
    random_matrix,
    tiny_interval_matrix_params,
)

from repro.interval.linalg import interval_gram, interval_matmul
from repro.interval.sparse import SparseIntervalMatrix

SOUND_KERNELS = ("exact", "rump")
COMMON_SETTINGS = common_settings(max_examples=25)


def _assert_contains(result, lower_ref, upper_ref):
    """Exact (tolerance-free) containment of a float64 reference box."""
    res_lower = np.asarray(result.lower, dtype=np.float64)
    res_upper = np.asarray(result.upper, dtype=np.float64)
    assert np.all(res_lower <= lower_ref), (
        f"lower endpoint overshoots the reference by "
        f"{np.max(res_lower - lower_ref)}"
    )
    assert np.all(res_upper >= upper_ref), (
        f"upper endpoint undershoots the reference by "
        f"{np.max(upper_ref - res_upper)}"
    )


class TestVertexHullEnclosure:
    @pytest.mark.parametrize("kernel", SOUND_KERNELS)
    @settings(**COMMON_SETTINGS)
    @given(tiny_interval_matrix_params)
    def test_float32_product_encloses_true_hull(self, kernel, params):
        a, b, _ = random_interval_pair(params, dtype=np.float32)
        hull_lower, hull_upper = brute_force_hull(a, b)
        result = interval_matmul(a, b, kernel=kernel)
        assert result.dtype == np.float32
        _assert_contains(result, hull_lower, hull_upper)


class TestMemberContainment:
    @pytest.mark.parametrize("kernel", SOUND_KERNELS)
    @settings(**COMMON_SETTINGS)
    @given(interval_matrix_params)
    def test_float32_product_contains_member_products(self, kernel, params):
        a, b, rng = random_interval_pair(params, dtype=np.float32)
        result = interval_matmul(a, b, kernel=kernel)
        assert result.dtype == np.float32
        for _ in range(8):
            a_member = rng.uniform(a.lower, a.upper)
            b_member = rng.uniform(b.lower, b.upper)
            product = a_member @ b_member
            _assert_contains(result, product, product)

    @pytest.mark.parametrize("kernel", SOUND_KERNELS)
    @pytest.mark.parametrize("accum_dtype", [None, np.float64])
    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_float32_gram_contains_member_grams(self, kernel, accum_dtype,
                                                params):
        matrix = random_matrix(params, dtype=np.float32)
        gram = interval_gram(matrix, kernel=kernel, accum_dtype=accum_dtype)
        assert gram.dtype == np.float32
        rng = np.random.default_rng(params[-1] + 1)
        for _ in range(6):
            member = rng.uniform(matrix.lower, matrix.upper)
            reference = member.T @ member
            _assert_contains(gram, reference, reference)

    # `exact` has no blocked gram path, so `rump` is the only sound kernel
    # with one.
    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_float32_blocked_gram_contains_member_grams(self, params):
        matrix = random_matrix(params, dtype=np.float32)
        gram = interval_gram(matrix, kernel="rump", block_rows=3)
        assert gram.dtype == np.float32
        rng = np.random.default_rng(params[-1] + 2)
        for _ in range(4):
            member = rng.uniform(matrix.lower, matrix.upper)
            reference = member.T @ member
            _assert_contains(gram, reference, reference)


class TestSparseEnclosure:
    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_float32_sparse_rump_gram_contains_member_grams(self, params):
        rows, cols, _, seed = params
        rng = np.random.default_rng(seed)
        dense = integer_interval_matrix(rng, rows, cols, 0.4,
                                        dtype=np.float32)
        sparse = SparseIntervalMatrix.from_dense(dense)
        assert sparse.dtype == np.float32
        gram = interval_gram(sparse, kernel="rump")
        assert gram.dtype == np.float32
        for _ in range(6):
            member = rng.uniform(dense.lower, dense.upper)
            reference = member.T @ member
            _assert_contains(gram, reference, reference)
