"""Byte-stability locks: determinism within a dtype, and float64 parity.

Two distinct guarantees, both asserted on raw bytes (``.tobytes()``), never
on tolerances:

* **within a dtype** — micro-batching, in-process sharding, and the worker
  fleet's scatter-gather must reproduce the unbatched/unsharded answer bit
  for bit, at float32 exactly as the suite already locks for float64;
* **float64 parity** — the default (``dtype=None``) pipeline must remain
  byte-identical to an explicit ``dtype="float64"`` request for every ISVD
  method, so the precision plumbing is provably a no-op on the historical
  path.
"""

import numpy as np
import pytest

from strategies import random_matrix

from repro.core.isvd import isvd
from repro.serve.query import QueryEngine
from repro.serve.shard import ShardedModelStore, ShardedQueryEngine, ShardPlanner
from repro.serve.worker import WorkerShardedQueryEngine

DTYPE_NAMES = ("float64", "float32")

MATRIX_PARAMS = (24, 16, 0.6, 7)  # rows, cols, intensity, seed
RANK = 5


def _fit(dtype):
    matrix = random_matrix(MATRIX_PARAMS)
    return matrix, isvd(matrix, RANK, method="isvd4", target="b", dtype=dtype)


def _factor_bytes(decomposition):
    parts = []
    for factor in (decomposition.u, decomposition.sigma, decomposition.v):
        lower = getattr(factor, "lower", factor)
        upper = getattr(factor, "upper", factor)
        parts.append(np.ascontiguousarray(lower).tobytes())
        parts.append(np.ascontiguousarray(upper).tobytes())
    return b"".join(parts)


@pytest.mark.parametrize("dtype", DTYPE_NAMES)
class TestMicroBatching:
    def test_batched_reconstruct_equals_per_row(self, dtype):
        matrix, decomposition = _fit(dtype)
        engine = QueryEngine(decomposition)
        rows = matrix.midpoint()[:8].astype(dtype)
        batched = engine.reconstruct_rows(rows)
        assert batched.dtype.name == dtype
        stacked = np.vstack([engine.reconstruct_rows(rows[i:i + 1])
                             for i in range(rows.shape[0])])
        assert batched.tobytes() == stacked.tobytes()

    def test_batched_top_k_equals_per_row(self, dtype):
        matrix, decomposition = _fit(dtype)
        engine = QueryEngine(decomposition)
        rows = matrix.midpoint()[:8].astype(dtype)
        batched = engine.top_k_items(rows, 4)
        for i in range(rows.shape[0]):
            single = engine.top_k_items(rows[i:i + 1], 4)
            assert single.indices.tobytes() == batched.indices[i:i + 1].tobytes()
            assert single.scores.tobytes() == batched.scores[i:i + 1].tobytes()


@pytest.mark.parametrize("dtype", DTYPE_NAMES)
class TestShardingByteParity:
    def test_in_process_sharded_engine_matches_unsharded(self, dtype):
        matrix, decomposition = _fit(dtype)
        unsharded = QueryEngine(decomposition)
        sharded = ShardedQueryEngine(ShardPlanner(3).split(decomposition))
        try:
            rows = matrix.midpoint()[:6].astype(dtype)
            assert (sharded.reconstruct_rows(rows).tobytes()
                    == unsharded.reconstruct_rows(rows).tobytes())
            assert (sharded.scores_for_users().tobytes()
                    == unsharded.scores_for_users().tobytes())
            sharded_nn = sharded.nearest_neighbors(rows, 4)
            unsharded_nn = unsharded.nearest_neighbors(rows, 4)
            assert sharded_nn.indices.tobytes() == unsharded_nn.indices.tobytes()
            assert sharded_nn.scores.tobytes() == unsharded_nn.scores.tobytes()
        finally:
            sharded.close()


class TestWorkerScatterGather:
    def test_float32_worker_fleet_matches_in_process_engine(self, tmp_path):
        matrix, decomposition = _fit("float32")
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m32", decomposition, 2, matrix=matrix)
        reference = QueryEngine(decomposition)
        engine = WorkerShardedQueryEngine(store, "m32")
        try:
            rows = matrix.midpoint()[:5].astype(np.float32)
            gathered = engine.reconstruct_rows(rows)
            expected = reference.reconstruct_rows(rows)
            assert gathered.dtype == np.float32
            assert gathered.tobytes() == expected.tobytes()
            worker_nn = engine.nearest_neighbors(rows, 3)
            local_nn = reference.nearest_neighbors(rows, 3)
            assert worker_nn.indices.tobytes() == local_nn.indices.tobytes()
            assert worker_nn.scores.tobytes() == local_nn.scores.tobytes()
        finally:
            engine.close()


class TestFloat64Parity:
    @pytest.mark.parametrize("method,target", [
        ("isvd0", "c"),
        ("isvd1", "b"),
        ("isvd2", "b"),
        ("isvd3", "b"),
        ("isvd4", "b"),
    ])
    def test_explicit_float64_is_byte_identical_to_default(self, method,
                                                           target):
        matrix = random_matrix(MATRIX_PARAMS)
        default = isvd(matrix, RANK, method=method, target=target)
        explicit = isvd(matrix, RANK, method=method, target=target,
                        dtype="float64")
        assert _factor_bytes(default) == _factor_bytes(explicit)

    def test_float64_serving_is_byte_identical_to_default(self):
        matrix = random_matrix(MATRIX_PARAMS)
        default = QueryEngine(isvd(matrix, RANK, method="isvd4", target="b"))
        explicit = QueryEngine(
            isvd(matrix, RANK, method="isvd4", target="b", dtype="float64"))
        rows = matrix.midpoint()[:6]
        assert (default.reconstruct_rows(rows).tobytes()
                == explicit.reconstruct_rows(rows).tobytes())
        assert (default.scores_for_users().tobytes()
                == explicit.scores_for_users().tobytes())
