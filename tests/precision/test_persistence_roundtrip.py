"""Persistence of non-default dtypes: NPZ archives, sidecars, shards, pins.

A float32 model must survive the full publish → reload cycle with its dtype
*and its exact bytes*, its sidecar must record the dtype, and every consumer
that pinned a different precision must refuse it loudly instead of serving
silently-upcast numbers.  Float64 models must keep producing the exact
sidecar payload and fingerprint digest they always have, so pre-existing
stores stay valid byte for byte.
"""

import hashlib

import numpy as np
import pytest

from strategies import random_matrix

from repro.core.isvd import isvd
from repro.interval.linalg import interval_matmul
from repro.interval.sparse import SparseIntervalMatrix
from repro.io import interval_fingerprint
from repro.serve.shard import ShardedModelStore
from repro.serve.store import ModelRecord, ModelStore
from repro.serve.worker import WorkerError, WorkerShardedQueryEngine

MATRIX_PARAMS = (20, 14, 0.5, 11)
RANK = 4


def _fit(dtype=None):
    matrix = random_matrix(MATRIX_PARAMS)
    return matrix, isvd(matrix, RANK, method="isvd4", target="b", dtype=dtype)


def _endpoint_bytes(factor):
    lower = getattr(factor, "lower", factor)
    upper = getattr(factor, "upper", factor)
    return (np.ascontiguousarray(lower).tobytes()
            + np.ascontiguousarray(upper).tobytes())


class TestNpzRoundTrip:
    def test_float32_model_survives_publish_and_reload(self, tmp_path):
        matrix, decomposition = _fit("float32")
        store = ModelStore(tmp_path / "models")
        record = store.save("m32", decomposition, matrix=matrix)
        assert record.dtype == "float32"
        assert record.to_dict()["dtype"] == "float32"
        loaded, loaded_record = store.load("m32")
        assert loaded_record.dtype == "float32"
        assert loaded.dtype == np.float32
        for original, reloaded in zip(
                (decomposition.u, decomposition.sigma, decomposition.v),
                (loaded.u, loaded.sigma, loaded.v)):
            assert _endpoint_bytes(original) == _endpoint_bytes(reloaded)

    def test_float64_sidecar_omits_dtype_key(self, tmp_path):
        matrix, decomposition = _fit()
        store = ModelStore(tmp_path / "models")
        record = store.save("m64", decomposition, matrix=matrix)
        assert record.dtype == "float64"
        assert "dtype" not in record.to_dict()

    def test_invalid_sidecar_dtype_is_rejected(self, tmp_path):
        matrix, decomposition = _fit()
        store = ModelStore(tmp_path / "models")
        payload = store.save("m64", decomposition, matrix=matrix).to_dict()
        payload["dtype"] = "float16"
        with pytest.raises(ValueError, match="invalid model dtype"):
            ModelRecord.from_dict(payload)


class TestShardedRoundTrip:
    def test_float32_shards_record_dtype_and_reload_bitwise(self, tmp_path):
        matrix, decomposition = _fit("float32")
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m32", decomposition, 3, matrix=matrix)
        assert record.dtype == "float32"
        assert store.manifest("m32").record.dtype == "float32"
        merged, merged_record = store.load_merged("m32")
        assert merged_record.dtype == "float32"
        assert merged.dtype == np.float32
        for original, reloaded in zip(
                (decomposition.u, decomposition.sigma, decomposition.v),
                (merged.u, merged.sigma, merged.v)):
            assert _endpoint_bytes(original) == _endpoint_bytes(reloaded)

    def test_pinned_supervisor_refuses_mismatched_model(self, tmp_path):
        matrix, decomposition = _fit("float32")
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m32", decomposition, 2, matrix=matrix)
        with pytest.raises(WorkerError, match="pinned to dtype"):
            WorkerShardedQueryEngine(store, "m32", dtype="float64")


class TestFingerprintParity:
    def test_float64_fingerprint_matches_legacy_format(self):
        matrix = random_matrix(MATRIX_PARAMS)
        legacy = hashlib.sha256()
        legacy.update(repr(matrix.shape).encode())
        legacy.update(np.ascontiguousarray(matrix.lower).tobytes())
        legacy.update(np.ascontiguousarray(matrix.upper).tobytes())
        assert interval_fingerprint(matrix) == legacy.hexdigest()

    def test_float32_fingerprint_is_dtype_tagged(self):
        matrix = random_matrix(MATRIX_PARAMS)
        narrowed = matrix.astype(np.float32, outward=True)
        assert interval_fingerprint(narrowed) != interval_fingerprint(matrix)
        tagged = hashlib.sha256()
        tagged.update(repr(narrowed.shape).encode())
        tagged.update(b"dtype:float32:")
        tagged.update(np.ascontiguousarray(narrowed.lower).tobytes())
        tagged.update(np.ascontiguousarray(narrowed.upper).tobytes())
        assert interval_fingerprint(narrowed) == tagged.hexdigest()


class TestSparseDtypePreservation:
    """Regression: ``from_dense``/``interval_matmul`` silently upcast float32
    sparse operands to float64 before this tier existed."""

    def test_from_dense_preserves_float32(self):
        matrix = random_matrix(MATRIX_PARAMS, dtype=np.float32)
        sparse = SparseIntervalMatrix.from_dense(matrix)
        assert sparse.dtype == np.float32
        assert sparse.lower.data.dtype == np.float32
        assert sparse.upper.data.dtype == np.float32

    def test_sparse_matmul_preserves_float32(self):
        left = random_matrix((6, 5, 0.5, 3), dtype=np.float32)
        right = random_matrix((5, 4, 0.5, 4), dtype=np.float32)
        product = interval_matmul(SparseIntervalMatrix.from_dense(left),
                                  SparseIntervalMatrix.from_dense(right),
                                  kernel="rump")
        assert product.dtype == np.float32

    def test_mixed_dtype_sparse_operands_upcast_to_float64(self):
        left = random_matrix((6, 5, 0.5, 3), dtype=np.float32)
        right = random_matrix((5, 4, 0.5, 4))
        product = interval_matmul(SparseIntervalMatrix.from_dense(left),
                                  SparseIntervalMatrix.from_dense(right),
                                  kernel="rump")
        assert product.dtype == np.float64
