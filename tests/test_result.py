"""Tests for the IntervalDecomposition result container."""

import numpy as np
import pytest

from repro.core.result import (
    DecompositionTarget,
    FactorizationHistory,
    IntervalDecomposition,
)
from repro.interval.array import IntervalMatrix


def _scalar_decomposition(n=6, m=8, r=3):
    rng = np.random.default_rng(0)
    return IntervalDecomposition(
        u=rng.normal(size=(n, r)),
        sigma=np.diag(rng.uniform(1, 2, size=r)),
        v=rng.normal(size=(m, r)),
        target="c",
        method="TEST",
        rank=r,
    )


class TestDecompositionTarget:
    def test_coerce_strings(self):
        assert DecompositionTarget.coerce("a") is DecompositionTarget.A
        assert DecompositionTarget.coerce("B") is DecompositionTarget.B

    def test_coerce_member_passthrough(self):
        assert DecompositionTarget.coerce(DecompositionTarget.C) is DecompositionTarget.C

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            DecompositionTarget.coerce("z")


class TestValidation:
    def test_valid_scalar_decomposition(self):
        decomposition = _scalar_decomposition()
        assert decomposition.shape == (6, 8)

    def test_rank_mismatch_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            IntervalDecomposition(
                u=rng.normal(size=(6, 3)), sigma=np.eye(3), v=rng.normal(size=(8, 3)),
                target="c", method="TEST", rank=4,
            )

    def test_non_square_core_raises(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            IntervalDecomposition(
                u=rng.normal(size=(6, 3)), sigma=np.ones((3, 4)), v=rng.normal(size=(8, 3)),
                target="c", method="TEST", rank=3,
            )

    def test_target_b_rejects_interval_factors(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            IntervalDecomposition(
                u=IntervalMatrix.from_scalar(rng.normal(size=(6, 3))),
                sigma=np.eye(3),
                v=rng.normal(size=(8, 3)),
                target="b", method="TEST", rank=3,
            )

    def test_target_c_rejects_interval_core(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            IntervalDecomposition(
                u=rng.normal(size=(6, 3)),
                sigma=IntervalMatrix.from_scalar(np.eye(3)),
                v=rng.normal(size=(8, 3)),
                target="c", method="TEST", rank=3,
            )


class TestAccessors:
    def test_scalar_views_of_scalar_factors(self):
        decomposition = _scalar_decomposition()
        np.testing.assert_array_equal(decomposition.u_scalar(), decomposition.u)
        np.testing.assert_array_equal(decomposition.sigma_scalar(), decomposition.sigma)

    def test_scalar_views_of_interval_factors(self):
        rng = np.random.default_rng(1)
        u_base = rng.normal(size=(5, 2))
        v_base = rng.normal(size=(6, 2))
        u = IntervalMatrix(u_base, u_base + rng.random((5, 2)))
        sigma = IntervalMatrix(np.diag([1.0, 2.0]), np.diag([2.0, 3.0]))
        v = IntervalMatrix(v_base, v_base + rng.random((6, 2)))
        decomposition = IntervalDecomposition(u=u, sigma=sigma, v=v, target="a",
                                              method="TEST", rank=2)
        np.testing.assert_allclose(decomposition.u_scalar(), u.midpoint())
        assert decomposition.is_interval_core and decomposition.is_interval_factors

    def test_singular_values_vector(self):
        decomposition = _scalar_decomposition()
        values = decomposition.singular_values()
        assert values.shape == (3,)
        assert values.is_scalar()

    def test_projection_shape(self):
        decomposition = _scalar_decomposition()
        projection = decomposition.projection()
        assert projection.shape == (6, 3)

    def test_describe_mentions_method_and_target(self):
        text = _scalar_decomposition().describe()
        assert "TEST" in text and "target c" in text


class TestFactorizationHistory:
    def test_record_and_final_loss(self):
        history = FactorizationHistory()
        assert history.final_loss is None
        history.record(2.0)
        history.record(1.0)
        assert history.epochs == 2
        assert history.final_loss == 1.0

    def test_improved(self):
        history = FactorizationHistory()
        history.record(2.0)
        assert not history.improved()
        history.record(1.5)
        assert history.improved()
