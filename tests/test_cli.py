"""Tests for the command-line interface."""

import json
import threading

import numpy as np
import pytest

from repro import io as repro_io
from repro.cli import build_parser, main
from repro.interval.random import random_interval_matrix


@pytest.fixture
def matrix_csv(tmp_path):
    matrix = random_interval_matrix((10, 6), interval_intensity=0.5, rng=1)
    path = tmp_path / "matrix.csv"
    repro_io.save_interval_csv(matrix, path)
    return path, matrix


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self):
        # Target defaults to None so each method's preferred target applies
        # (isvd4 -> "b") without breaking methods that only support "a" or "c".
        args = build_parser().parse_args(["decompose", "--csv", "x.csv"])
        assert args.method == "isvd4" and args.target is None

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "--csv", "x.csv", "--method", "isvd9"])


class TestDecomposeCommand:
    def test_from_csv(self, matrix_csv, capsys):
        path, _ = matrix_csv
        exit_code = main(["decompose", "--csv", str(path), "--rank", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "H-mean reconstruction accuracy" in captured
        assert "ISVD4" in captured

    def test_from_npz_with_output(self, tmp_path, capsys):
        matrix = random_interval_matrix((8, 5), interval_intensity=0.4, rng=2)
        npz_path = tmp_path / "matrix.npz"
        repro_io.save_interval_npz(matrix, npz_path)
        out_path = tmp_path / "factors.npz"
        exit_code = main(["decompose", "--npz", str(npz_path), "--rank", "2",
                          "--method", "isvd1", "--target", "a",
                          "--output", str(out_path)])
        assert exit_code == 0
        loaded = repro_io.load_decomposition_npz(out_path)
        assert loaded.method == "ISVD1" and loaded.rank == 2

    def test_from_endpoint_csvs(self, tmp_path, capsys):
        matrix = random_interval_matrix((6, 4), interval_intensity=0.4, rng=3)
        lower = tmp_path / "lower.csv"
        upper = tmp_path / "upper.csv"
        np.savetxt(lower, matrix.lower, delimiter=",")
        np.savetxt(upper, matrix.upper, delimiter=",")
        exit_code = main(["decompose", "--lower", str(lower), "--upper", str(upper)])
        assert exit_code == 0

    def test_missing_input_raises(self):
        with pytest.raises(SystemExit):
            main(["decompose"])

    def test_rank_clipped_to_matrix(self, matrix_csv, capsys):
        path, _ = matrix_csv
        exit_code = main(["decompose", "--csv", str(path), "--rank", "100"])
        assert exit_code == 0
        assert "rank: 6" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_uniform_csv(self, tmp_path, capsys):
        out = tmp_path / "generated.csv"
        exit_code = main(["generate", str(out), "--rows", "6", "--cols", "9", "--seed", "1"])
        assert exit_code == 0
        matrix, _ = repro_io.load_interval_csv(out)
        assert matrix.shape == (6, 9)

    def test_generate_anonymized_npz(self, tmp_path):
        out = tmp_path / "generated.npz"
        exit_code = main(["generate", str(out), "--kind", "anonymized",
                          "--rows", "5", "--cols", "7", "--seed", "2"])
        assert exit_code == 0
        assert repro_io.load_interval_npz(out).shape == (5, 7)

    def test_generate_then_decompose(self, tmp_path, capsys):
        out = tmp_path / "generated.csv"
        main(["generate", str(out), "--rows", "8", "--cols", "10", "--seed", "3"])
        exit_code = main(["decompose", "--csv", str(out), "--rank", "4"])
        assert exit_code == 0


class TestExperimentCommand:
    def test_unknown_experiment_raises(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_fig3_runs_and_exports_json(self, tmp_path, capsys, monkeypatch):
        # Shrink the default config so the CLI experiment stays fast in CI.
        from repro.datasets.synthetic import SyntheticConfig
        from repro.experiments import alignment

        small = alignment.AlignmentConfig(
            synthetic=SyntheticConfig(shape=(15, 30), rank=6), trials=1, seed=0
        )
        monkeypatch.setattr(alignment, "AlignmentConfig", lambda: small)
        json_path = tmp_path / "fig3.json"
        exit_code = main(["experiment", "fig3", "--json", str(json_path)])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert "fig3" in payload and payload["fig3"]["rows"]


class TestListMethodsCommand:
    def test_lists_every_registered_key(self, capsys):
        from repro.core import registry

        exit_code = main(["list-methods"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        for key in registry.available():
            assert key in captured
        assert "targets" in captured and "cost" in captured

    def test_lists_every_interval_kernel(self, capsys):
        from repro.interval.kernels import available_kernels

        main(["list-methods"])
        captured = capsys.readouterr().out
        for key in available_kernels():
            assert key in captured
        assert "sound" in captured


class TestIntervalKernelOption:
    def test_decompose_accepts_each_kernel(self, matrix_csv, capsys):
        path, _ = matrix_csv
        from repro.interval.kernels import available_kernels

        for kernel in available_kernels():
            exit_code = main(["decompose", "--csv", str(path), "--rank", "3",
                              "--interval-kernel", kernel])
            assert exit_code == 0
            assert "ISVD4" in capsys.readouterr().out

    def test_unknown_kernel_rejected_by_parser(self, matrix_csv):
        path, _ = matrix_csv
        with pytest.raises(SystemExit):
            main(["decompose", "--csv", str(path), "--interval-kernel", "typo"])

    def test_kernel_with_unaware_method_exits_cleanly(self, matrix_csv):
        path, _ = matrix_csv
        with pytest.raises(SystemExit, match="interval-kernel"):
            main(["decompose", "--csv", str(path), "--rank", "2",
                  "--method", "isvd1", "--interval-kernel", "rump"])

    def test_experiment_threads_kernel_into_engine(self, tmp_path, monkeypatch):
        from repro import cli as cli_module

        captured = {}

        class RecordingEngine:
            def __init__(self, jobs, cache_dir, kernel=None):
                captured["kernel"] = kernel

        monkeypatch.setattr(cli_module, "ExperimentEngine", RecordingEngine)
        registry = {"noop": lambda engine: {}}
        monkeypatch.setattr(cli_module, "_experiment_registry", lambda: registry)
        exit_code = main(["experiment", "noop", "--interval-kernel", "exact"])
        assert exit_code == 0
        assert captured["kernel"] == "exact"

    def test_serve_threads_kernel_into_app(self, matrix_csv, tmp_path, capsys, monkeypatch):
        from repro.serve.http import ServingHTTPServer

        path, _ = matrix_csv
        store = tmp_path / "store"
        main(["decompose", "--csv", str(path), "--rank", "2",
              "--save-model", "m", "--store", str(store)])
        capsys.readouterr()
        monkeypatch.setattr(ServingHTTPServer, "serve_forever", lambda self: None)
        holder = {}
        original_init = ServingHTTPServer.__init__

        def recording_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            holder["server"] = self

        monkeypatch.setattr(ServingHTTPServer, "__init__", recording_init)
        assert main(["serve", "--store", str(store), "--port", "0",
                     "--interval-kernel", "rump"]) == 0
        assert holder["server"].app.kernel.key == "rump"


class TestDecomposeRegistryMethods:
    def test_decompose_with_interval_pca(self, tmp_path, capsys):
        out = tmp_path / "m.csv"
        main(["generate", str(out), "--rows", "8", "--cols", "10", "--seed", "5"])
        exit_code = main(["decompose", "--csv", str(out), "--rank", "3",
                          "--method", "interval-pca"])
        assert exit_code == 0
        assert "IntervalPCA" in capsys.readouterr().out

    def test_decompose_with_nmf(self, tmp_path, capsys):
        # Uniform synthetic values are non-negative, so NMF applies directly.
        out = tmp_path / "m.csv"
        main(["generate", str(out), "--rows", "8", "--cols", "10", "--seed", "6"])
        exit_code = main(["decompose", "--csv", str(out), "--rank", "3",
                          "--method", "nmf", "--seed", "1"])
        assert exit_code == 0
        assert "NMF" in capsys.readouterr().out

    def test_unsupported_target_exits_cleanly(self, tmp_path, capsys):
        out = tmp_path / "m.csv"
        main(["generate", str(out), "--rows", "6", "--cols", "8", "--seed", "7"])
        with pytest.raises(SystemExit, match="targets"):
            main(["decompose", "--csv", str(out), "--rank", "2",
                  "--method", "isvd0", "--target", "b"])


class TestServingCommands:
    @pytest.fixture
    def published(self, matrix_csv, tmp_path):
        """A store with one model published through the CLI."""
        path, matrix = matrix_csv
        store = tmp_path / "store"
        exit_code = main(["decompose", "--csv", str(path), "--rank", "3",
                          "--method", "isvd4", "--save-model", "m1",
                          "--store", str(store)])
        assert exit_code == 0
        return store, matrix

    def test_save_model_publishes_to_store(self, published, capsys):
        from repro.serve.store import ModelStore

        store, matrix = published
        records = ModelStore(store).list()
        assert [r.name for r in records] == ["m1"]
        assert records[0].method == "ISVD4" and records[0].rank == 3
        assert records[0].fingerprint == repro_io.interval_fingerprint(matrix)

    def test_save_model_invalid_name_exits(self, matrix_csv, tmp_path):
        path, _ = matrix_csv
        with pytest.raises(SystemExit, match="invalid model name"):
            main(["decompose", "--csv", str(path), "--rank", "2",
                  "--save-model", "../escape", "--store", str(tmp_path / "s")])

    def test_models_lists_store(self, published, capsys):
        store, _ = published
        assert main(["models", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "m1" in out and "ISVD4" in out

    def test_models_empty_store(self, tmp_path, capsys):
        assert main(["models", "--store", str(tmp_path / "empty")]) == 0
        assert "no models" in capsys.readouterr().out

    def test_serve_starts_and_announces_models(self, published, capsys, monkeypatch):
        from repro.serve.http import ServingHTTPServer

        store, _ = published
        monkeypatch.setattr(ServingHTTPServer, "serve_forever", lambda self: None)
        assert main(["serve", "--store", str(store), "--port", "0"]) == 0
        out = capsys.readouterr().out
        assert "serving 1 model(s)" in out and "m1" in out

    def test_query_round_trip_against_live_server(self, published, matrix_csv, capsys):
        from repro.serve import QueryEngine, create_server
        from repro.serve.store import ModelStore

        store, matrix = published
        path, _ = matrix_csv
        server = create_server(str(store), port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            exit_code = main(["query", "--url", f"http://{host}:{port}",
                              "--model", "m1", "--op", "recommend", "-k", "3",
                              "--csv", str(path)])
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
        assert exit_code == 0
        payload = json.loads(capsys.readouterr().out)
        decomposition, _ = ModelStore(store).load("m1")
        expected = QueryEngine(decomposition).top_k_items(matrix, 3)
        assert payload["items"] == expected.indices.tolist()
        assert payload["scores"] == expected.scores.tolist()

    def test_query_unreachable_server_exits(self, matrix_csv):
        path, _ = matrix_csv
        with pytest.raises(SystemExit, match="cannot reach"):
            main(["query", "--url", "http://127.0.0.1:9", "--model", "m1",
                  "--csv", str(path)])

    def test_query_unknown_model_reports_server_error(self, published, matrix_csv):
        from repro.serve import create_server

        store, _ = published
        path, _ = matrix_csv
        server = create_server(str(store), port=0)
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with pytest.raises(SystemExit, match="404"):
                main(["query", "--url", f"http://{host}:{port}",
                      "--model", "ghost", "--csv", str(path)])
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


@pytest.fixture
def small_fig6(monkeypatch):
    """Shrink the Figure 6 config so engine-backed CLI runs stay fast."""
    from repro.datasets.synthetic import SyntheticConfig
    from repro.experiments import fig6_overview

    small = fig6_overview.Figure6Config(
        synthetic=SyntheticConfig(shape=(12, 20), rank=5), trials=2,
        include_lp=False, targets=("b", "c"),
    )
    monkeypatch.setattr(fig6_overview, "Figure6Config", lambda: small)
    return small


class TestExperimentEngineOptions:
    def test_jobs_produce_byte_identical_json(self, tmp_path, capsys, monkeypatch):
        # fig7 is a pure-accuracy experiment: its whole payload (rows, orders,
        # records) is deterministic, so the exported files must match to the byte.
        from repro.experiments import fig7_anonymized

        small = fig7_anonymized.Figure7Config(
            shape=(12, 20), trials=2, rank_fractions=(1.0, 0.5),
            profiles=("medium",),
        )
        monkeypatch.setattr(fig7_anonymized, "Figure7Config", lambda: small)
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["experiment", "fig7", "--jobs", "1", "--json", str(serial_path)]) == 0
        assert main(["experiment", "fig7", "--jobs", "3", "--json", str(parallel_path)]) == 0
        assert serial_path.read_bytes() == parallel_path.read_bytes()

    def test_fig6_records_identical_across_jobs(self, tmp_path, small_fig6, capsys):
        # fig6 also reports wall-clock timing rows (measurements, inherently
        # run-dependent), so byte-identity is asserted on the canonical records.
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["experiment", "fig6", "--jobs", "1", "--json", str(serial_path)]) == 0
        assert main(["experiment", "fig6", "--jobs", "3", "--json", str(parallel_path)]) == 0
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["accuracy"] == parallel["accuracy"]
        assert serial["timings"]["records"] == parallel["timings"]["records"]

    def test_format_json_emits_records(self, small_fig6, capsys):
        assert main(["experiment", "fig6", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"accuracy", "timings"}
        records = payload["accuracy"]["records"]
        assert records and {"method", "trial", "value"} <= set(records[0])

    def test_format_csv_emits_rows(self, small_fig6, capsys):
        assert main(["experiment", "fig6", "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("experiment,accuracy")
        assert "ISVD4-b" in out

    def test_cache_dir_populates_and_reuses(self, tmp_path, small_fig6, capsys):
        cache_dir = tmp_path / "cache"
        first = tmp_path / "first.json"
        second = tmp_path / "second.json"
        assert main(["experiment", "fig6", "--cache-dir", str(cache_dir),
                     "--json", str(first)]) == 0
        cached_files = list(cache_dir.glob("*.npz"))
        assert cached_files
        assert main(["experiment", "fig6", "--cache-dir", str(cache_dir),
                     "--json", str(second)]) == 0
        first_payload = json.loads(first.read_text())
        second_payload = json.loads(second.read_text())
        # Accuracy results are cache-independent; timing rows are wall-clock
        # measurements (the timings grid intentionally bypasses the cache).
        assert first_payload["accuracy"] == second_payload["accuracy"]
        assert sum(row[-1] for row in second_payload["timings"]["rows"]) > 0.0
