"""Tests for the command-line interface."""

import json

import numpy as np
import pytest

from repro import io as repro_io
from repro.cli import build_parser, main
from repro.interval.random import random_interval_matrix


@pytest.fixture
def matrix_csv(tmp_path):
    matrix = random_interval_matrix((10, 6), interval_intensity=0.5, rng=1)
    path = tmp_path / "matrix.csv"
    repro_io.save_interval_csv(matrix, path)
    return path, matrix


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_decompose_defaults(self):
        args = build_parser().parse_args(["decompose", "--csv", "x.csv"])
        assert args.method == "isvd4" and args.target == "b"

    def test_rejects_unknown_method(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["decompose", "--csv", "x.csv", "--method", "isvd9"])


class TestDecomposeCommand:
    def test_from_csv(self, matrix_csv, capsys):
        path, _ = matrix_csv
        exit_code = main(["decompose", "--csv", str(path), "--rank", "3"])
        captured = capsys.readouterr().out
        assert exit_code == 0
        assert "H-mean reconstruction accuracy" in captured
        assert "ISVD4" in captured

    def test_from_npz_with_output(self, tmp_path, capsys):
        matrix = random_interval_matrix((8, 5), interval_intensity=0.4, rng=2)
        npz_path = tmp_path / "matrix.npz"
        repro_io.save_interval_npz(matrix, npz_path)
        out_path = tmp_path / "factors.npz"
        exit_code = main(["decompose", "--npz", str(npz_path), "--rank", "2",
                          "--method", "isvd1", "--target", "a",
                          "--output", str(out_path)])
        assert exit_code == 0
        loaded = repro_io.load_decomposition_npz(out_path)
        assert loaded.method == "ISVD1" and loaded.rank == 2

    def test_from_endpoint_csvs(self, tmp_path, capsys):
        matrix = random_interval_matrix((6, 4), interval_intensity=0.4, rng=3)
        lower = tmp_path / "lower.csv"
        upper = tmp_path / "upper.csv"
        np.savetxt(lower, matrix.lower, delimiter=",")
        np.savetxt(upper, matrix.upper, delimiter=",")
        exit_code = main(["decompose", "--lower", str(lower), "--upper", str(upper)])
        assert exit_code == 0

    def test_missing_input_raises(self):
        with pytest.raises(SystemExit):
            main(["decompose"])

    def test_rank_clipped_to_matrix(self, matrix_csv, capsys):
        path, _ = matrix_csv
        exit_code = main(["decompose", "--csv", str(path), "--rank", "100"])
        assert exit_code == 0
        assert "rank: 6" in capsys.readouterr().out


class TestGenerateCommand:
    def test_generate_uniform_csv(self, tmp_path, capsys):
        out = tmp_path / "generated.csv"
        exit_code = main(["generate", str(out), "--rows", "6", "--cols", "9", "--seed", "1"])
        assert exit_code == 0
        matrix, _ = repro_io.load_interval_csv(out)
        assert matrix.shape == (6, 9)

    def test_generate_anonymized_npz(self, tmp_path):
        out = tmp_path / "generated.npz"
        exit_code = main(["generate", str(out), "--kind", "anonymized",
                          "--rows", "5", "--cols", "7", "--seed", "2"])
        assert exit_code == 0
        assert repro_io.load_interval_npz(out).shape == (5, 7)

    def test_generate_then_decompose(self, tmp_path, capsys):
        out = tmp_path / "generated.csv"
        main(["generate", str(out), "--rows", "8", "--cols", "10", "--seed", "3"])
        exit_code = main(["decompose", "--csv", str(out), "--rank", "4"])
        assert exit_code == 0


class TestExperimentCommand:
    def test_unknown_experiment_raises(self):
        with pytest.raises(SystemExit):
            main(["experiment", "fig99"])

    def test_fig3_runs_and_exports_json(self, tmp_path, capsys, monkeypatch):
        # Shrink the default config so the CLI experiment stays fast in CI.
        from repro.datasets.synthetic import SyntheticConfig
        from repro.experiments import alignment

        small = alignment.AlignmentConfig(
            synthetic=SyntheticConfig(shape=(15, 30), rank=6), trials=1, seed=0
        )
        monkeypatch.setattr(alignment, "AlignmentConfig", lambda: small)
        json_path = tmp_path / "fig3.json"
        exit_code = main(["experiment", "fig3", "--json", str(json_path)])
        assert exit_code == 0
        payload = json.loads(json_path.read_text())
        assert "fig3" in payload and payload["fig3"]["rows"]
