"""Tests for the query engine and the micro-batcher."""

import threading

import numpy as np
import pytest

from repro.core import registry
from repro.eval.knn import pairwise_interval_distances
from repro.serve.batching import MicroBatcher
from repro.serve.query import QueryEngine, top_k


@pytest.fixture
def engine(small_interval_matrix):
    decomposition = registry.get("isvd4").fit(small_interval_matrix, 4, target="b")
    return QueryEngine(decomposition)


class TestTopK:
    def test_matches_brute_force_argsort(self, engine, small_interval_matrix):
        result = engine.top_k_items(small_interval_matrix, k=5)
        scores = engine.reconstruct_rows(small_interval_matrix)
        assert result.indices.shape == (small_interval_matrix.shape[0], 5)
        for i in range(scores.shape[0]):
            expected = np.argsort(-scores[i], kind="stable")[:5]
            np.testing.assert_array_equal(result.indices[i], expected)
            np.testing.assert_array_equal(result.scores[i], scores[i][expected])

    def test_scores_are_sorted_descending(self, engine, small_interval_matrix):
        result = engine.top_k_items(small_interval_matrix, k=6)
        assert np.all(np.diff(result.scores, axis=1) <= 0)

    def test_k_clipped_to_item_count(self, engine, small_interval_matrix):
        result = engine.top_k_items(small_interval_matrix, k=10_000)
        assert result.indices.shape[1] == engine.n_items

    def test_k_must_be_positive(self, engine, small_interval_matrix):
        with pytest.raises(ValueError, match="k"):
            engine.top_k_items(small_interval_matrix, k=0)

    def test_ties_break_by_ascending_index(self):
        scores = np.array([[1.0, 3.0, 3.0, 0.5]])
        result = top_k(scores, k=3)
        np.testing.assert_array_equal(result.indices, [[1, 2, 0]])

    def test_batched_equals_row_at_a_time(self, engine, small_interval_matrix):
        batched = engine.top_k_items(small_interval_matrix, k=4)
        for i in range(small_interval_matrix.shape[0]):
            single = engine.top_k_items(small_interval_matrix.row(i), k=4)
            np.testing.assert_array_equal(single.indices[0], batched.indices[i])
            np.testing.assert_array_equal(single.scores[0], batched.scores[i])

    def test_stored_user_queries_use_trained_latent_rows(self, engine):
        result = engine.top_k_for_users([0, 2], k=3)
        expected = top_k(engine.user_latent[[0, 2]] @ engine.item_map, 3)
        np.testing.assert_array_equal(result.indices, expected.indices)


class TestNearestNeighbors:
    def test_matches_pairwise_distances(self, engine, small_interval_matrix):
        result = engine.nearest_neighbors(small_interval_matrix, k=3)
        features = engine.projector.latent_features(small_interval_matrix)
        distances = pairwise_interval_distances(features, engine.reference_features)
        for i in range(distances.shape[0]):
            expected = np.argsort(distances[i], kind="stable")[:3]
            np.testing.assert_array_equal(result.indices[i], expected)

    def test_distances_sorted_ascending(self, engine, small_interval_matrix):
        result = engine.nearest_neighbors(small_interval_matrix, k=4)
        assert np.all(np.diff(result.scores, axis=1) >= 0)

    def test_k_bounded_by_stored_rows(self, engine, small_interval_matrix):
        result = engine.nearest_neighbors(small_interval_matrix.row(0), k=1_000)
        assert result.indices.shape == (1, engine.n_users)


class TestMicroBatcher:
    def test_single_request_runs_alone(self):
        calls = []

        def run(requests):
            calls.append(list(requests))
            return [r * 10 for r in requests]

        batcher = MicroBatcher(run, max_batch=8, max_delay=0.0)
        assert batcher.submit(3) == 30
        assert calls == [[3]]
        assert batcher.batches_run == 1 and batcher.requests_served == 1

    def test_concurrent_requests_share_batches(self):
        barrier = threading.Barrier(8)
        batch_sizes = []
        lock = threading.Lock()

        def run(requests):
            with lock:
                batch_sizes.append(len(requests))
            return [r + 100 for r in requests]

        batcher = MicroBatcher(run, max_batch=8, max_delay=0.2)
        results = [None] * 8

        def worker(i):
            barrier.wait()
            results[i] = batcher.submit(i)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        assert results == [i + 100 for i in range(8)]
        assert batcher.requests_served == 8
        # At least one batch actually stacked concurrent requests.
        assert max(batch_sizes) > 1
        assert batcher.batches_run == len(batch_sizes) < 8

    def test_full_batch_releases_leader_immediately(self):
        def run(requests):
            return list(requests)

        batcher = MicroBatcher(run, max_batch=1, max_delay=60.0)
        # max_batch=1 closes the batch at submit time: no waiting despite the
        # huge window.
        assert batcher.submit("x") == "x"

    def test_errors_propagate_to_every_waiter(self):
        barrier = threading.Barrier(4)

        def run(requests):
            raise RuntimeError("backend down")

        batcher = MicroBatcher(run, max_batch=4, max_delay=0.2)
        errors = []

        def worker():
            barrier.wait()
            try:
                batcher.submit(1)
            except RuntimeError as error:
                errors.append(str(error))

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert errors == ["backend down"] * 4

    def test_wrong_result_count_is_an_error(self):
        batcher = MicroBatcher(lambda requests: [], max_batch=4, max_delay=0.0)
        with pytest.raises(RuntimeError, match="results"):
            batcher.submit(1)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ValueError):
            MicroBatcher(lambda r: r, max_batch=0)
        with pytest.raises(ValueError):
            MicroBatcher(lambda r: r, max_delay=-1.0)
