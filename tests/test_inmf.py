"""Tests for the NMF and I-NMF baselines."""

import numpy as np
import pytest

from repro.core.inmf import INMF, NMF
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_low_rank_matrix


@pytest.fixture(scope="module")
def nonnegative_matrix():
    return random_low_rank_matrix((20, 15), rank=4, noise=0.01, nonnegative=True, rng=17)


@pytest.fixture(scope="module")
def nonnegative_interval_matrix(nonnegative_matrix):
    rng = np.random.default_rng(18)
    radius = 0.05 * nonnegative_matrix * rng.random(nonnegative_matrix.shape)
    return IntervalMatrix(np.clip(nonnegative_matrix - radius, 0, None),
                          nonnegative_matrix + radius)


class TestNMF:
    def test_factors_are_nonnegative(self, nonnegative_matrix):
        model = NMF(rank=4, max_iter=80, seed=0).fit(nonnegative_matrix)
        assert model.u.min() >= 0.0 and model.v.min() >= 0.0

    def test_loss_decreases(self, nonnegative_matrix):
        model = NMF(rank=4, max_iter=80, seed=0).fit(nonnegative_matrix)
        assert model.history.improved()

    def test_reconstruction_close_at_true_rank(self, nonnegative_matrix):
        model = NMF(rank=4, max_iter=300, seed=0).fit(nonnegative_matrix)
        error = np.linalg.norm(nonnegative_matrix - model.reconstruct())
        assert error / np.linalg.norm(nonnegative_matrix) < 0.2

    def test_interval_input_uses_midpoint(self, nonnegative_interval_matrix):
        model = NMF(rank=4, max_iter=50, seed=0).fit(nonnegative_interval_matrix)
        assert model.reconstruct().shape == nonnegative_interval_matrix.shape

    def test_negative_input_raises(self):
        with pytest.raises(ValueError):
            NMF(rank=2).fit(-np.ones((3, 3)))

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            NMF(rank=0)

    def test_unfitted_use_raises(self):
        with pytest.raises(RuntimeError):
            NMF(rank=2).reconstruct()

    def test_features_shape(self, nonnegative_matrix):
        model = NMF(rank=3, max_iter=30, seed=0).fit(nonnegative_matrix)
        assert model.features().shape == (20, 3)

    def test_seed_reproducibility(self, nonnegative_matrix):
        a = NMF(rank=3, max_iter=20, seed=9).fit(nonnegative_matrix)
        b = NMF(rank=3, max_iter=20, seed=9).fit(nonnegative_matrix)
        np.testing.assert_allclose(a.u, b.u)


class TestINMF:
    def test_scalar_u_interval_v(self, nonnegative_interval_matrix):
        model = INMF(rank=4, max_iter=60, seed=1).fit(nonnegative_interval_matrix)
        assert model.u.shape == (20, 4)
        assert model.v_lower.shape == model.v_upper.shape == (15, 4)

    def test_all_factors_nonnegative(self, nonnegative_interval_matrix):
        model = INMF(rank=4, max_iter=60, seed=1).fit(nonnegative_interval_matrix)
        assert model.u.min() >= 0.0
        assert model.v_lower.min() >= 0.0 and model.v_upper.min() >= 0.0

    def test_loss_decreases(self, nonnegative_interval_matrix):
        model = INMF(rank=4, max_iter=60, seed=1).fit(nonnegative_interval_matrix)
        assert model.history.improved()

    def test_reconstruction_is_valid_interval(self, nonnegative_interval_matrix):
        model = INMF(rank=4, max_iter=60, seed=1).fit(nonnegative_interval_matrix)
        reconstruction = model.reconstruct()
        assert reconstruction.is_valid()
        assert reconstruction.shape == nonnegative_interval_matrix.shape

    def test_reconstruction_midpoint_close(self, nonnegative_interval_matrix):
        model = INMF(rank=4, max_iter=300, seed=1).fit(nonnegative_interval_matrix)
        midpoint = nonnegative_interval_matrix.midpoint()
        error = np.linalg.norm(midpoint - model.reconstruct().midpoint())
        assert error / np.linalg.norm(midpoint) < 0.25

    def test_scalar_matrix_accepted(self, nonnegative_matrix):
        model = INMF(rank=3, max_iter=30, seed=1).fit(nonnegative_matrix)
        assert model.features().shape == (20, 3)

    def test_negative_input_raises(self):
        with pytest.raises(ValueError):
            INMF(rank=2).fit(IntervalMatrix([[-1.0]], [[1.0]]))

    def test_invalid_rank_raises(self):
        with pytest.raises(ValueError):
            INMF(rank=-1)

    def test_unfitted_use_raises(self):
        with pytest.raises(RuntimeError):
            INMF(rank=2).features()


class TestAINMF:
    def test_import_and_fit(self, nonnegative_interval_matrix):
        from repro.core.inmf import AINMF

        model = AINMF(rank=4, max_iter=40, align_every=5, seed=2)
        model.fit(nonnegative_interval_matrix)
        assert model.u.shape == (20, 4)
        assert model.reconstruct().is_valid()

    def test_factors_stay_nonnegative_after_alignment(self, nonnegative_interval_matrix):
        from repro.core.inmf import AINMF

        model = AINMF(rank=4, max_iter=40, seed=2).fit(nonnegative_interval_matrix)
        assert model.v_lower.min() >= 0.0 and model.v_upper.min() >= 0.0

    def test_alignment_improves_or_preserves_latent_similarity(self, nonnegative_interval_matrix):
        from repro.core.ilsa import matched_cosines
        from repro.core.inmf import AINMF, INMF

        plain = INMF(rank=4, max_iter=60, seed=2).fit(nonnegative_interval_matrix)
        aligned = AINMF(rank=4, max_iter=60, align_every=10, seed=2).fit(
            nonnegative_interval_matrix
        )
        plain_cos = np.abs(matched_cosines(plain.v_lower, plain.v_upper)).mean()
        aligned_cos = np.abs(matched_cosines(aligned.v_lower, aligned.v_upper)).mean()
        assert aligned_cos >= plain_cos - 0.05

    def test_invalid_align_every_raises(self):
        from repro.core.inmf import AINMF

        with pytest.raises(ValueError):
            AINMF(rank=2, align_every=0)

    def test_negative_input_raises(self):
        from repro.core.inmf import AINMF
        from repro.interval.array import IntervalMatrix

        with pytest.raises(ValueError):
            AINMF(rank=2).fit(IntervalMatrix([[-1.0]], [[1.0]]))
