"""Tests for the parallel, cached experiment engine."""

import json

import numpy as np
import pytest

from repro.core import registry
from repro.experiments import engine as engine_module
from repro.experiments.engine import (
    DecompositionCache,
    ExperimentEngine,
    ExperimentRecord,
    GridSpec,
    derive_seed,
    records_to_csv,
    records_to_json,
)
from repro.experiments.runner import MethodSpec, evaluate_grid
from repro.interval.random import random_interval_matrix

SPECS = [
    GridSpec("ISVD0", "isvd0", "c"),
    GridSpec("ISVD2-b", "isvd2", "b"),
    GridSpec("ISVD4-a", "isvd4", "a"),
]


@pytest.fixture(scope="module")
def matrices():
    return [random_interval_matrix((14, 18), interval_intensity=0.4, rng=s)
            for s in range(3)]


class TestDeriveSeed:
    def test_stable(self):
        assert derive_seed(0, "fig6", "isvd4", "b", 5, 0) == \
            derive_seed(0, "fig6", "isvd4", "b", 5, 0)

    def test_distinct_across_cells(self):
        seeds = {derive_seed(0, "fig6", "isvd4", "b", 5, trial) for trial in range(50)}
        assert len(seeds) == 50

    def test_depends_on_base_seed(self):
        assert derive_seed(0, "x") != derive_seed(1, "x")

    def test_fits_in_32_bits(self):
        assert 0 <= derive_seed(123, "anything") < 2**32


class TestParallelDeterminism:
    def test_serial_and_parallel_records_identical(self, matrices):
        serial = ExperimentEngine(jobs=1).evaluate_grid(matrices, SPECS, 6, experiment="t")
        parallel = ExperimentEngine(jobs=4).evaluate_grid(matrices, SPECS, 6, experiment="t")
        assert records_to_json(serial.records) == records_to_json(parallel.records)

    def test_map_preserves_order(self):
        engine = ExperimentEngine(jobs=4)
        assert engine.map(lambda x: x * x, range(20)) == [x * x for x in range(20)]

    def test_scores_keyed_in_spec_order(self, matrices):
        grid = ExperimentEngine(jobs=2).evaluate_grid(matrices, SPECS, 6)
        assert list(grid.scores()) == [spec.label for spec in SPECS]

    def test_runner_evaluate_grid_delegates(self, matrices):
        scores = evaluate_grid(matrices, [MethodSpec("ISVD4-b", "isvd4", "b")], 6)
        direct = ExperimentEngine().evaluate_grid(
            matrices, [MethodSpec("ISVD4-b", "isvd4", "b")], 6).scores()
        assert scores == direct

    def test_rank_clipped_per_matrix(self, matrices):
        grid = ExperimentEngine().evaluate_grid(matrices, SPECS, 100)
        assert all(record.rank == 14 for record in grid.records)


class TestCache:
    def test_warm_run_hits_every_cell(self, matrices, tmp_path):
        engine = ExperimentEngine(jobs=2, cache_dir=tmp_path)
        cold = engine.evaluate_grid(matrices, SPECS, 6, experiment="t")
        warm = engine.evaluate_grid(matrices, SPECS, 6, experiment="t")
        assert cold.cache_hits() == 0
        assert warm.cache_hits() == len(warm.records) == 9
        assert records_to_json(warm.records) == records_to_json(cold.records)

    def test_cache_hits_skip_recomputation(self, matrices, tmp_path, monkeypatch):
        engine = ExperimentEngine(cache_dir=tmp_path)
        engine.evaluate_grid(matrices, SPECS, 6, experiment="t")

        def explode(*args, **kwargs):  # any fit call on a warm cache is a bug
            raise AssertionError("decomposition recomputed despite warm cache")

        # All SPECS methods route through the `isvd` dispatcher the registry
        # adapters close over; breaking it proves warm cells never recompute.
        monkeypatch.setattr(registry, "isvd", explode)
        warm = engine.evaluate_grid(matrices, SPECS, 6, experiment="t")
        assert warm.cache_hits() == len(warm.records)

    def test_distinct_cells_get_distinct_keys(self, tmp_path):
        cache = DecompositionCache(tmp_path)
        base = cache.key("fp", "isvd4", "b", 5)
        assert cache.key("fp", "isvd4", "b", 6) != base
        assert cache.key("fp", "isvd4", "c", 5) != base
        assert cache.key("fp", "isvd3", "b", 5) != base
        assert cache.key("other", "isvd4", "b", 5) != base
        assert cache.key("fp", "isvd4", "b", 5, seed=1) != base

    def test_load_miss_returns_none(self, tmp_path):
        assert DecompositionCache(tmp_path).load("deadbeef") is None

    def test_large_array_options_do_not_collide(self, tmp_path):
        # repr() truncates big arrays to identical '...' strings; the key
        # must hash the actual bytes instead.
        cache = DecompositionCache(tmp_path)
        first = np.zeros(2000)
        second = np.zeros(2000)
        second[1000] = 1.0
        assert repr(first) == repr(second)  # the trap the key must avoid
        assert cache.key("fp", "pmf", "c", 5, seed=1, options={"mask": first}) != \
            cache.key("fp", "pmf", "c", 5, seed=1, options={"mask": second})

    def test_fig8_grid_uses_the_cache(self, tmp_path):
        from repro.experiments import fig8_faces

        config = fig8_faces.Figure8Config(
            n_subjects=4, images_per_subject=3, resolution=8,
            reconstruction_ranks=(3,), classification_ranks=(3,),
            nmf_iterations=5, seed=1,
        )
        engine = ExperimentEngine(cache_dir=tmp_path)
        fig8_faces.run_reconstruction(config, methods=("ISVD4-b", "NMF"), engine=engine)
        assert len(engine.cache) == 2
        # Classification at the same rank reuses the cached decompositions.
        fig8_faces.run_nn_classification(config, methods=("ISVD4-b", "NMF"), engine=engine)
        assert len(engine.cache) == 2

    def test_unseeded_stochastic_fits_are_never_cached(self, tmp_path):
        # Without a seed every call is a fresh random draw; caching it would
        # freeze the first draw forever.
        matrix = random_interval_matrix((8, 9), interval_intensity=0.3, rng=1)
        engine = ExperimentEngine(cache_dir=tmp_path)
        first, hit_first = engine.decompose(matrix.clip_nonnegative(), "inmf", 3)
        second, hit_second = engine.decompose(matrix.clip_nonnegative(), "inmf", 3)
        assert not hit_first and not hit_second
        assert not np.allclose(first.u, second.u)
        assert len(list(tmp_path.glob("*.npz"))) == 0

    def test_cached_timing_grid_stays_measured(self, tmp_path):
        # Figure 6(b) bypasses the cache: cached cells carry no timings, which
        # would silently zero the whole execution-time table.
        from repro.datasets.synthetic import SyntheticConfig
        from repro.experiments import fig6_overview

        config = fig6_overview.Figure6Config(
            synthetic=SyntheticConfig(shape=(12, 20), rank=5), trials=1,
            include_lp=False, targets=("b",),
        )
        engine = ExperimentEngine(cache_dir=tmp_path)
        fig6_overview.run_accuracy(config, engine=engine)  # populates the cache
        result = fig6_overview.run_timings(config, engine=engine)
        assert sum(result.column("total")) > 0.0

    def test_stochastic_methods_keyed_by_seed(self, tmp_path):
        matrix = random_interval_matrix((8, 9), interval_intensity=0.3, rng=1)
        engine = ExperimentEngine(cache_dir=tmp_path)
        first, hit_first = engine.decompose(matrix.clip_nonnegative(), "inmf", 3, seed=1)
        second, hit_second = engine.decompose(matrix.clip_nonnegative(), "inmf", 3, seed=2)
        assert not hit_first and not hit_second
        assert not np.allclose(first.u, second.u)
        again, hit_again = engine.decompose(matrix.clip_nonnegative(), "inmf", 3, seed=1)
        assert hit_again and np.allclose(again.u, first.u)


class TestRecordsExport:
    def _records(self):
        return [
            ExperimentRecord(experiment="t", trial=0, method="isvd4", label="ISVD4-b",
                             target="b", rank=5, seed=42, metric="h_mean", value=0.9,
                             duration=1.5, cache_hit=True, timings={"alignment": 0.1}),
            ExperimentRecord(experiment="t", trial=1, method="isvd0", label="ISVD0",
                             target="c", rank=5, seed=43, metric="h_mean", value=0.8),
        ]

    def test_json_is_deterministic_and_runtime_free(self, tmp_path):
        records = self._records()
        text = records_to_json(records, tmp_path / "records.json")
        payload = json.loads((tmp_path / "records.json").read_text())
        assert payload == json.loads(text)
        assert "duration" not in payload[0] and "cache_hit" not in payload[0]
        assert payload[0]["value"] == 0.9

    def test_json_with_runtime(self):
        payload = json.loads(records_to_json(self._records(), include_runtime=True))
        assert payload[0]["cache_hit"] is True
        assert payload[0]["timings"] == {"alignment": 0.1}

    def test_csv_round_layout(self, tmp_path):
        text = records_to_csv(self._records(), tmp_path / "records.csv")
        lines = text.strip().splitlines()
        assert lines[0].split(",")[:3] == ["experiment", "trial", "method"]
        assert len(lines) == 3
        assert (tmp_path / "records.csv").read_text() == text

    def test_mean_timings_aggregation(self):
        grid = engine_module.GridResult(records=self._records())
        timings = grid.mean_timings(("alignment",))
        assert timings["ISVD4-b"]["alignment"] == pytest.approx(0.1)
        assert timings["ISVD0"]["alignment"] == 0.0
