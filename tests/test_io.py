"""Tests for interval-matrix and decomposition I/O."""

import numpy as np
import pytest

from repro import io as repro_io
from repro.core.isvd import isvd
from repro.core.result import DecompositionTarget
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix
from repro.interval.scalar import IntervalError


@pytest.fixture
def matrix():
    return random_interval_matrix((8, 5), interval_intensity=0.5, rng=3)


class TestCsvRoundTrip:
    def test_wide_csv_roundtrip(self, matrix, tmp_path):
        path = tmp_path / "matrix.csv"
        repro_io.save_interval_csv(matrix, path, column_names=[f"f{j}" for j in range(5)])
        loaded, names = repro_io.load_interval_csv(path)
        assert names == [f"f{j}" for j in range(5)]
        assert loaded.allclose(matrix)

    def test_default_column_names(self, matrix, tmp_path):
        path = tmp_path / "matrix.csv"
        repro_io.save_interval_csv(matrix, path)
        _, names = repro_io.load_interval_csv(path)
        assert names == [f"c{j}" for j in range(5)]

    def test_wrong_column_name_count_raises(self, matrix, tmp_path):
        with pytest.raises(IntervalError):
            repro_io.save_interval_csv(matrix, tmp_path / "x.csv", column_names=["only_one"])

    def test_scalar_csv_loads_as_degenerate_intervals(self, tmp_path):
        path = tmp_path / "scalar.csv"
        path.write_text("a,b\n1.0,2.0\n3.0,4.0\n")
        loaded, names = repro_io.load_interval_csv(path)
        assert names == ["a", "b"]
        assert loaded.is_scalar()
        assert loaded.shape == (2, 2)

    def test_empty_csv_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(IntervalError):
            repro_io.load_interval_csv(path)

    def test_endpoint_csvs(self, matrix, tmp_path):
        lower_path = tmp_path / "lower.csv"
        upper_path = tmp_path / "upper.csv"
        np.savetxt(lower_path, matrix.lower, delimiter=",")
        np.savetxt(upper_path, matrix.upper, delimiter=",")
        loaded = repro_io.load_endpoint_csvs(lower_path, upper_path)
        assert loaded.allclose(matrix)

    def test_endpoint_csvs_shape_mismatch_raises(self, matrix, tmp_path):
        lower_path = tmp_path / "lower.csv"
        upper_path = tmp_path / "upper.csv"
        np.savetxt(lower_path, matrix.lower, delimiter=",")
        np.savetxt(upper_path, matrix.upper[:4], delimiter=",")
        with pytest.raises(IntervalError):
            repro_io.load_endpoint_csvs(lower_path, upper_path)

    def test_endpoint_csv_with_header_row(self, matrix, tmp_path):
        lower_path = tmp_path / "lower.csv"
        upper_path = tmp_path / "upper.csv"
        header = ",".join(f"f{j}" for j in range(5))
        np.savetxt(lower_path, matrix.lower, delimiter=",", header=header, comments="")
        np.savetxt(upper_path, matrix.upper, delimiter=",", header=header, comments="")
        loaded = repro_io.load_endpoint_csvs(lower_path, upper_path)
        assert loaded.allclose(matrix)


class TestNpzRoundTrip:
    def test_matrix_roundtrip(self, matrix, tmp_path):
        path = tmp_path / "matrix.npz"
        repro_io.save_interval_npz(matrix, path)
        assert repro_io.load_interval_npz(path).allclose(matrix)

    def test_missing_keys_raise(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, something=np.zeros((2, 2)))
        with pytest.raises(IntervalError):
            repro_io.load_interval_npz(path)


class TestDecompositionRoundTrip:
    @pytest.mark.parametrize("target", ["a", "b", "c"])
    def test_roundtrip_preserves_factors(self, matrix, tmp_path, target):
        decomposition = isvd(matrix, 3, method="isvd4", target=target)
        path = tmp_path / "decomposition.npz"
        repro_io.save_decomposition_npz(decomposition, path)
        loaded = repro_io.load_decomposition_npz(path)
        assert loaded.method == decomposition.method
        assert loaded.rank == decomposition.rank
        assert loaded.target is DecompositionTarget.coerce(target)
        np.testing.assert_allclose(loaded.u_scalar(), decomposition.u_scalar(), atol=1e-12)
        np.testing.assert_allclose(loaded.sigma_scalar(), decomposition.sigma_scalar(),
                                   atol=1e-12)

    def test_interval_factor_kinds_preserved(self, matrix, tmp_path):
        decomposition = isvd(matrix, 3, method="isvd4", target="a")
        path = tmp_path / "decomposition.npz"
        repro_io.save_decomposition_npz(decomposition, path)
        loaded = repro_io.load_decomposition_npz(path)
        assert isinstance(loaded.u, IntervalMatrix)
        assert isinstance(loaded.sigma, IntervalMatrix)

    def test_non_decomposition_archive_raises(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, lower=np.zeros((2, 2)), upper=np.ones((2, 2)))
        with pytest.raises(IntervalError):
            repro_io.load_decomposition_npz(path)


class TestEdgeCaseRoundTrips:
    """1-row and empty matrices must survive the cache's NPZ round-trips."""

    def test_one_row_matrix_npz_roundtrip(self, tmp_path):
        matrix = IntervalMatrix([[1.0, 2.0, 3.0]], [[1.5, 2.0, 3.5]])
        path = tmp_path / "one_row.npz"
        repro_io.save_interval_npz(matrix, path)
        loaded = repro_io.load_interval_npz(path)
        assert loaded.shape == (1, 3)
        assert loaded.allclose(matrix)

    def test_one_row_matrix_csv_roundtrip(self, tmp_path):
        matrix = IntervalMatrix([[1.0, 2.0]], [[1.5, 2.5]])
        path = tmp_path / "one_row.csv"
        repro_io.save_interval_csv(matrix, path)
        loaded, names = repro_io.load_interval_csv(path)
        assert loaded.shape == (1, 2) and names == ["c0", "c1"]
        assert loaded.allclose(matrix)

    def test_empty_matrix_npz_roundtrip(self, tmp_path):
        matrix = IntervalMatrix(np.empty((0, 4)), np.empty((0, 4)))
        path = tmp_path / "empty.npz"
        repro_io.save_interval_npz(matrix, path)
        loaded = repro_io.load_interval_npz(path)
        assert loaded.shape == (0, 4)

    def test_empty_matrix_csv_roundtrip(self, tmp_path):
        matrix = IntervalMatrix(np.empty((0, 2)), np.empty((0, 2)))
        path = tmp_path / "empty.csv"
        repro_io.save_interval_csv(matrix, path)
        loaded, names = repro_io.load_interval_csv(path)
        assert loaded.shape == (0, 2) and names == ["c0", "c1"]

    def test_one_row_decomposition_roundtrip(self, tmp_path):
        matrix = IntervalMatrix([[1.0, 2.0, 3.0]], [[1.5, 2.5, 3.5]])
        decomposition = isvd(matrix, 1, method="isvd1", target="b")
        path = tmp_path / "one_row_decomposition.npz"
        repro_io.save_decomposition_npz(decomposition, path)
        loaded = repro_io.load_decomposition_npz(path)
        assert loaded.shape == (1, 3) and loaded.rank == 1
        np.testing.assert_allclose(loaded.u_scalar(), decomposition.u_scalar())


class TestFingerprint:
    def test_identical_content_shares_fingerprint(self, matrix):
        assert repro_io.interval_fingerprint(matrix) == \
            repro_io.interval_fingerprint(matrix.copy())

    def test_value_and_shape_changes_alter_fingerprint(self, matrix):
        base = repro_io.interval_fingerprint(matrix)
        perturbed = matrix.copy()
        perturbed.upper[0, 0] += 1e-9
        assert repro_io.interval_fingerprint(perturbed) != base
        assert repro_io.interval_fingerprint(matrix.T) != base

    def test_scalar_input_coerced(self):
        values = np.arange(6.0).reshape(2, 3)
        assert repro_io.interval_fingerprint(values) == \
            repro_io.interval_fingerprint(IntervalMatrix.from_scalar(values))
