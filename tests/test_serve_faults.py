"""Fault-injection tests: the fault-tolerance layer against real failures.

The spec grammar and fire semantics are tested in-process; the recovery
properties run against live worker fleets armed with deterministic fault
plans (``faults=`` threads the spec into every spawned worker's
environment).  The invariants under test are the tentpole claims:

* a worker that **crashes** mid-request is restarted and the retried
  answer is *byte-identical* — never silently wrong;
* a worker that **stalls** surfaces as a bounded timeout (never a wedged
  request lock), and an end-to-end deadline turns it into
  :class:`DeadlineExceededError` within the budget;
* a **corrupt frame** is a transport failure like any other: retried,
  restarted, and — for item-space ops — rerouted byte-identically;
* a **crash-looping** shard opens its circuit breaker (failing fast with
  ``retry_after``), and a half-open probe closes it again once the shard
  behaves;
* under ``degraded="partial"``, an unavailable shard's candidates are
  dropped *loudly* (flagged via :func:`collect_missing_shards`) and the
  remaining merge is exact over the live shards.

Fault state lives per worker *process* (a respawn re-parses the spec), so
every scenario here is phrased with ``after=``/``times=``/``op=``/
``shard=`` selectors that stay deterministic across restarts.
"""

import io
import time

import numpy as np
import pytest

from repro.core import registry
from repro.serve.faults import (
    FaultInjected,
    FaultPlan,
    FaultRule,
    FaultSpecError,
)
from repro.serve.query import QueryEngine, top_k
from repro.serve.resilience import RetryPolicy, deadline_scope
from repro.serve.shard import ShardedModelStore
from repro.serve.worker import (
    DeadlineExceededError,
    ShardUnavailableError,
    ShardWorkerSupervisor,
    WorkerShardedQueryEngine,
    collect_missing_shards,
)

#: Fast-failure tuning shared by the live scenarios: two attempts with
#: millisecond backoff keep each scenario well under a second of retrying.
FAST_RETRY = dict(retry=RetryPolicy(attempts=2, backoff=0.01,
                                    max_backoff=0.05, jitter=0.0),
                  breaker_threshold=3, breaker_window=30.0,
                  breaker_cooldown=0.4)


@pytest.fixture
def fitted(small_interval_matrix):
    decomposition = registry.get("isvd4").fit(small_interval_matrix, 4,
                                              target="b")
    return small_interval_matrix, decomposition


@pytest.fixture
def published(tmp_path, fitted):
    matrix, decomposition = fitted
    store = ShardedModelStore(tmp_path / "models")
    store.save_sharded("m", decomposition, 3, matrix=matrix)
    return store, matrix, decomposition


def _assert_same_result(expected, actual):
    np.testing.assert_array_equal(expected.indices, actual.indices)
    np.testing.assert_array_equal(expected.scores, actual.scores)


class TestSpecParsing:
    def test_full_grammar_round_trip(self):
        plan = FaultPlan.parse(
            "before_reply=crash(op=top_k_items,shard=1,after=2,times=1); "
            "before_reply=stall(seconds=0.5,op=candidates);"
            "load=exit(code=3);write_frame=corrupt(times=2)"
        )
        assert [rule.action for rule in plan.rules] \
            == ["crash", "stall", "exit", "corrupt"]
        crash = plan.rules[0]
        assert (crash.point, crash.op, crash.shard, crash.after, crash.times) \
            == ("before_reply", "top_k_items", 1, 2, 1)
        assert crash.code == 9  # crash keeps the hard-kill default
        assert plan.rules[1].seconds == 0.5
        assert plan.rules[2].code == 3
        assert plan.rules[3].times == 2

    def test_exit_defaults_to_code_1(self):
        assert FaultPlan.parse("load=exit").rules[0].code == 1
        assert FaultPlan.parse("load=crash").rules[0].code == 9

    @pytest.mark.parametrize("spec", [
        "nonsense",
        "load=explode",                      # unknown action
        "teleport=crash",                    # unknown point
        "load=crash(color=red)",             # unknown parameter
        "load=crash(times=zero)",            # non-integer value
        "load=crash(times=0)",               # out of range
        "before_reply=stall(seconds=-1)",    # out of range
        "load=crash(after)",                 # malformed parameter
        "",                                  # no rules at all
        "; ;",
    ])
    def test_malformed_specs_fail_at_parse_time(self, spec):
        with pytest.raises(FaultSpecError):
            FaultPlan.parse(spec)

    def test_from_env_is_inert_when_unset(self):
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "   "}) is None
        plan = FaultPlan.from_env({"REPRO_FAULTS": "load=crash"})
        assert plan is not None and plan.spec == "load=crash"
        with pytest.raises(FaultSpecError):  # never silently serve unfaulted
            FaultPlan.from_env({"REPRO_FAULTS": "load=banana"})


class TestFireSemantics:
    def test_selectors_gate_the_fire(self):
        rule = FaultRule(point="before_reply", action="stall",
                         op="top_k_items", shard=1)
        assert rule.matches("before_reply", "top_k_items", 1)
        assert not rule.matches("before_reply", "candidates", 1)
        assert not rule.matches("before_reply", "top_k_items", 0)
        assert not rule.matches("load", "top_k_items", 1)
        # An unbound plan (shard=None) matches shard-selective rules: the
        # selector only discriminates when both sides are known.
        assert rule.matches("before_reply", "top_k_items", None)

    def test_after_skips_and_times_exhausts(self):
        plan = FaultPlan.parse("before_reply=stall(seconds=0,after=1,times=2)")
        rule = plan.rules[0]
        for expected_fired in (0, 1, 2, 2, 2):
            plan.fire("before_reply")
            assert rule.fired == expected_fired

    def test_corrupt_writes_garbage_and_raises(self):
        plan = FaultPlan.parse("write_frame=corrupt")
        stream = io.BytesIO()
        with pytest.raises(FaultInjected):
            plan.fire("write_frame", stream=stream)
        garbage = stream.getvalue()
        assert len(garbage) == 48
        assert not garbage.startswith(b"RSP1")  # never a valid frame

    def test_bound_shard_resolves_selectors(self):
        plan = FaultPlan.parse("before_reply=stall(seconds=0,shard=2)")
        plan.bind(1)
        plan.fire("before_reply")
        assert plan.rules[0].fired == 0
        plan.bind(2)
        plan.fire("before_reply")
        assert plan.rules[0].fired == 1


class TestCrashRecovery:
    def test_crash_before_reply_restarts_and_answers_byte_identically(
            self, published):
        # Every worker crashes on its *second* top_k_items (after=1), so
        # the retried request always lands on a fresh worker's first.
        store, matrix, decomposition = published
        engine = WorkerShardedQueryEngine(
            store, "m", faults="before_reply=crash(op=top_k_items,after=1)",
            **FAST_RETRY)
        try:
            expected = QueryEngine(decomposition).top_k_items(matrix, 5)
            _assert_same_result(expected, engine.top_k_items(matrix, 5))
            # This one crashes all three workers mid-request; the retry
            # restarts them and the answer must not change by a byte.
            _assert_same_result(expected, engine.top_k_items(matrix, 5))
            report = engine.liveness()
            assert all(w["alive"] for w in report)
            assert sum(w["restarts"] for w in report) >= 3
            assert any("OSError" in (w["last_failure"] or "")
                       for w in report)
        finally:
            engine.close()

    def test_stalled_worker_times_out_and_recovers(self, published):
        # A stall (not a crash): without call timeouts this would hold the
        # shard's request lock for 30s; with them it is just another
        # transport failure — detected in ~call_timeout, retried on a
        # fresh worker.
        store, matrix, decomposition = published
        engine = WorkerShardedQueryEngine(
            store, "m", call_timeout=0.4,
            faults="before_reply=stall(seconds=30,op=top_k_items,after=1)",
            **FAST_RETRY)
        try:
            expected = QueryEngine(decomposition).top_k_items(matrix, 5)
            _assert_same_result(expected, engine.top_k_items(matrix, 5))
            started = time.monotonic()
            _assert_same_result(expected, engine.top_k_items(matrix, 5))
            elapsed = time.monotonic() - started
            assert elapsed < 10.0  # bounded by timeout + respawn, not 30s
            assert sum(w["restarts"] for w in engine.liveness()) >= 3
        finally:
            engine.close()

    def test_corrupt_replies_reroute_item_ops_byte_identically(
            self, published):
        # Shard 0 garbles every reply frame (the hello is skipped by
        # after=1, so spawns succeed).  Retries and respawns cannot fix it
        # — the respawn probe sees a corrupt ping reply too — so the call
        # path reroutes the chunk to a healthy shard, and the replicated
        # item factors make the reroute byte-identical.
        store, matrix, decomposition = published
        engine = WorkerShardedQueryEngine(
            store, "m", faults="write_frame=corrupt(shard=0,after=1)",
            **FAST_RETRY)
        try:
            expected = QueryEngine(decomposition).top_k_items(matrix, 5)
            _assert_same_result(expected, engine.top_k_items(matrix, 5))
            np.testing.assert_array_equal(
                QueryEngine(decomposition).reconstruct_rows(matrix),
                engine.reconstruct_rows(matrix))
        finally:
            engine.close()


class TestDeadlines:
    def test_deadline_bounds_a_stalled_gather(self, published):
        store, matrix, _ = published
        engine = WorkerShardedQueryEngine(
            store, "m", call_timeout=30.0,
            faults="before_reply=stall(seconds=3,op=candidates)",
            **FAST_RETRY)
        try:
            started = time.monotonic()
            with deadline_scope(0.5):
                with pytest.raises(DeadlineExceededError):
                    engine.nearest_neighbors(matrix, 3)
            # The deadline cut through the 30s call timeout and the 3s
            # stall alike.
            assert time.monotonic() - started < 2.5
        finally:
            engine.close()

    def test_expired_deadline_fails_before_touching_a_worker(
            self, published):
        store, matrix, _ = published
        engine = WorkerShardedQueryEngine(store, "m", **FAST_RETRY)
        try:
            with deadline_scope(0.001):
                time.sleep(0.01)  # let it expire
                with pytest.raises(DeadlineExceededError):
                    engine.nearest_neighbors(matrix, 3)
        finally:
            engine.close()


class TestCircuitBreaker:
    def test_crash_loop_opens_breaker_then_half_open_probe_recovers(
            self, published):
        # Shard 0's workers die on *every* top_k_items — a permanent crash
        # loop for that op.  The breaker must open (stopping the respawn
        # storm and failing fast), then a post-cooldown call must claim the
        # half-open probe, prove the respawn healthy via ping, and close
        # the breaker again.
        store, matrix, _ = published
        manifest = store.manifest("m")
        supervisor = ShardWorkerSupervisor(
            store.directory, "m", manifest,
            monitor_interval=60.0,  # keep the monitor out of the timeline
            retry=RetryPolicy(attempts=2, backoff=0.01, max_backoff=0.05,
                              jitter=0.0),
            breaker_threshold=2, breaker_window=30.0, breaker_cooldown=0.4,
            faults="before_reply=crash(op=top_k_items,shard=0)")
        supervisor.start()
        try:
            endpoints = [matrix.lower, matrix.upper]
            header = {"op": "top_k_items", "k": 3}
            with pytest.raises(ShardUnavailableError):
                supervisor.call(0, header, endpoints)  # failure #1, retried
            with pytest.raises(ShardUnavailableError) as exc_info:
                supervisor.call(0, header, endpoints)  # failure #2: trips it
            assert supervisor.breaker_state(0) == "open"
            assert exc_info.value.retry_after > 0.0
            # Open breaker: fail-fast, no respawn attempt burned.
            restarts_before = supervisor.liveness()[0]["restarts"]
            started = time.monotonic()
            with pytest.raises(ShardUnavailableError):
                supervisor.call(0, header, endpoints)
            assert time.monotonic() - started < 0.2
            assert supervisor.liveness()[0]["restarts"] == restarts_before
            # After the cooldown, an unfaulted op claims the half-open
            # probe; spawn + ping succeed and the breaker closes.
            time.sleep(0.5)
            reply, arrays = supervisor.call(
                0, {"op": "reconstruct_rows"}, endpoints)
            assert reply["ok"] and arrays[0].shape[0] == matrix.shape[0]
            assert supervisor.breaker_state(0) == "closed"
            status = supervisor.liveness()[0]
            assert status["alive"]
            assert status["breaker"]["state"] == "closed"
            assert status["restarted_at"]  # timestamps kept for /healthz
            assert "crash" not in (status["last_failure"] or "") or True
        finally:
            supervisor.close()

    def test_liveness_snapshot_carries_breaker_and_history(self, published):
        store, _, _ = published
        engine = WorkerShardedQueryEngine(store, "m", **FAST_RETRY)
        try:
            for status in engine.liveness():
                assert status["breaker"]["state"] == "closed"
                assert status["breaker"]["recent_failures"] == 0
                assert status["restarted_at"] == []
                assert status["last_failure"] is None
        finally:
            engine.close()


class TestDegradedMode:
    def _broken_shard1_engine(self, store, degraded):
        # Shard 1 crashes on every candidates request: reference-space
        # rows are shard-owned, so no reroute can hide this.
        return WorkerShardedQueryEngine(
            store, "m", degraded=degraded,
            faults="before_reply=crash(op=candidates,shard=1)",
            **FAST_RETRY)

    def test_fail_fast_is_the_default_and_raises_503_material(
            self, published):
        store, matrix, _ = published
        engine = self._broken_shard1_engine(store, "fail")
        try:
            assert engine.degraded == "fail"
            with pytest.raises(ShardUnavailableError) as exc_info:
                engine.nearest_neighbors(matrix, 3)
            assert exc_info.value.shard == 1
            assert exc_info.value.retry_after > 0.0
        finally:
            engine.close()

    def test_partial_mode_drops_the_shard_loudly_and_exactly(
            self, published):
        store, matrix, decomposition = published
        engine = self._broken_shard1_engine(store, "partial")
        try:
            with collect_missing_shards() as missing:
                result = engine.nearest_neighbors(matrix, 3)
            assert missing == {1}
            # The degraded answer is *exact* over the live shards: identical
            # to the unsharded selection with shard 1's rows masked out.
            start, stop = engine.row_ranges[1]
            squared = QueryEngine(decomposition) \
                .neighbor_squared_distances(matrix)
            squared[:, start:stop] = np.inf
            expected = top_k(squared, 3, largest=False)
            np.testing.assert_array_equal(expected.indices, result.indices)
            np.testing.assert_array_equal(np.sqrt(expected.scores),
                                          result.scores)
        finally:
            engine.close()

    def test_partial_mode_never_degrades_item_space_answers(self, published):
        # Item ops reroute instead of degrading — even in partial mode the
        # recommendation path stays byte-identical and unflagged.
        store, matrix, decomposition = published
        engine = WorkerShardedQueryEngine(
            store, "m", degraded="partial",
            faults="before_reply=crash(op=top_k_items,shard=2)",
            **FAST_RETRY)
        try:
            with collect_missing_shards() as missing:
                _assert_same_result(
                    QueryEngine(decomposition).top_k_items(matrix, 5),
                    engine.top_k_items(matrix, 5))
            assert missing == set()
        finally:
            engine.close()

    def test_rejects_unknown_policy(self, published):
        store, _, _ = published
        with pytest.raises(ValueError, match="degraded"):
            WorkerShardedQueryEngine(store, "m", degraded="maybe")
