"""Tests for the synthetic face dataset (ORL substitute, supplementary F.1)."""

import numpy as np
import pytest

from repro.datasets.faces import make_face_dataset, neighborhood_std


class TestGeneration:
    def test_shapes(self, tiny_face_dataset):
        dataset = tiny_face_dataset
        assert dataset.images.shape == (30, 144)
        assert dataset.intervals.shape == (30, 144)
        assert dataset.labels.shape == (30,)
        assert dataset.resolution == 12

    def test_counts(self, tiny_face_dataset):
        assert tiny_face_dataset.n_images == 30
        assert tiny_face_dataset.n_subjects == 6

    def test_pixels_in_unit_range(self, tiny_face_dataset):
        assert tiny_face_dataset.images.min() >= 0.0
        assert tiny_face_dataset.images.max() <= 1.0

    def test_intervals_contain_pixels(self, tiny_face_dataset):
        dataset = tiny_face_dataset
        assert np.all(dataset.intervals.lower <= dataset.images + 1e-9)
        assert np.all(dataset.images <= dataset.intervals.upper + 1e-9)

    def test_labels_are_balanced(self, tiny_face_dataset):
        _, counts = np.unique(tiny_face_dataset.labels, return_counts=True)
        assert np.all(counts == 5)

    def test_same_subject_images_more_similar_than_cross_subject(self, tiny_face_dataset):
        dataset = tiny_face_dataset
        same = np.linalg.norm(dataset.images[0] - dataset.images[1])
        cross = np.linalg.norm(dataset.images[0] - dataset.images[5])
        assert same < cross

    def test_reproducible(self):
        a = make_face_dataset(n_subjects=3, images_per_subject=2, resolution=8, seed=1)
        b = make_face_dataset(n_subjects=3, images_per_subject=2, resolution=8, seed=1)
        np.testing.assert_array_equal(a.images, b.images)

    def test_alpha_scales_interval_width(self):
        narrow = make_face_dataset(n_subjects=3, images_per_subject=2, resolution=8,
                                   alpha=0.5, seed=2)
        wide = make_face_dataset(n_subjects=3, images_per_subject=2, resolution=8,
                                 alpha=2.0, seed=2)
        assert wide.intervals.mean_span() > narrow.intervals.mean_span()

    def test_invalid_parameters_raise(self):
        with pytest.raises(ValueError):
            make_face_dataset(n_subjects=1)
        with pytest.raises(ValueError):
            make_face_dataset(images_per_subject=1)

    def test_image_grid_reshape(self, tiny_face_dataset):
        grid = tiny_face_dataset.image_grid(0)
        assert grid.shape == (12, 12)


class TestTrainTestSplit:
    def test_split_covers_all_indices(self, tiny_face_dataset):
        train, test = tiny_face_dataset.train_test_split(0.5, rng=0)
        assert sorted(np.concatenate([train, test]).tolist()) == list(range(30))

    def test_every_subject_in_both_splits(self, tiny_face_dataset):
        train, test = tiny_face_dataset.train_test_split(0.5, rng=0)
        labels = tiny_face_dataset.labels
        assert set(labels[train]) == set(labels[test]) == set(range(6))

    def test_invalid_fraction_raises(self, tiny_face_dataset):
        with pytest.raises(ValueError):
            tiny_face_dataset.train_test_split(1.5)


class TestNeighborhoodStd:
    def test_constant_image_has_zero_std(self):
        assert np.allclose(neighborhood_std(np.ones((8, 8)), radius=1), 0.0)

    def test_edge_pixel_has_higher_std(self):
        image = np.zeros((8, 8))
        image[:, 4:] = 1.0
        stds = neighborhood_std(image, radius=1)
        assert stds[0, 4] > stds[0, 0]

    def test_shape_preserved(self):
        assert neighborhood_std(np.random.default_rng(0).random((6, 7)), radius=2).shape == (6, 7)

    def test_invalid_radius_raises(self):
        with pytest.raises(ValueError):
            neighborhood_std(np.ones((4, 4)), radius=0)
