"""Tests for interval-aware nearest-neighbour classification and K-means clustering."""

import numpy as np
import pytest

from repro.eval.kmeans import IntervalKMeans, kmeans_nmi
from repro.eval.knn import (
    IntervalNearestNeighbor,
    nn_classification_f1,
    pairwise_interval_distances,
)
from repro.interval.array import IntervalMatrix
from repro.interval.linalg import interval_euclidean_distance


def _two_blob_features(rng, n_per_class=20, dim=4, separation=5.0):
    a = rng.normal(size=(n_per_class, dim))
    b = rng.normal(size=(n_per_class, dim)) + separation
    features = np.vstack([a, b])
    labels = np.array([0] * n_per_class + [1] * n_per_class)
    return features, labels


class TestPairwiseDistances:
    def test_matches_interval_euclidean_distance(self, rng):
        a_base = rng.normal(size=(3, 5))
        b_base = rng.normal(size=(4, 5))
        a = IntervalMatrix(a_base, a_base + rng.random((3, 5)))
        b = IntervalMatrix(b_base, b_base + rng.random((4, 5)))
        distances = pairwise_interval_distances(a, b)
        assert distances.shape == (3, 4)
        expected = interval_euclidean_distance(a.row(1), b.row(2))
        assert distances[1, 2] == pytest.approx(expected)

    def test_scalar_features_accepted(self, rng):
        a = rng.normal(size=(3, 4))
        b = rng.normal(size=(5, 4))
        assert pairwise_interval_distances(a, b).shape == (3, 5)

    def test_width_mismatch_raises(self, rng):
        with pytest.raises(ValueError):
            pairwise_interval_distances(rng.normal(size=(2, 3)), rng.normal(size=(2, 4)))


class TestNearestNeighbor:
    def test_separable_scalar_data(self, rng):
        features, labels = _two_blob_features(rng)
        classifier = IntervalNearestNeighbor().fit(features, labels)
        predictions = classifier.predict(features + 0.01)
        assert (predictions == labels).mean() > 0.95

    def test_separable_interval_data(self, rng):
        features, labels = _two_blob_features(rng)
        intervals = IntervalMatrix(features - 0.1, features + 0.1)
        classifier = IntervalNearestNeighbor().fit(intervals, labels)
        predictions = classifier.predict(intervals)
        assert (predictions == labels).mean() == 1.0

    def test_f1_helper_on_split(self, rng):
        features, labels = _two_blob_features(rng, n_per_class=30)
        order = rng.permutation(features.shape[0])
        train, test = order[:40], order[40:]
        score = nn_classification_f1(features[train], labels[train],
                                     features[test], labels[test])
        assert score > 0.9

    def test_fit_validation(self, rng):
        with pytest.raises(ValueError):
            IntervalNearestNeighbor().fit(rng.normal(size=(3, 2)), np.array([0, 1]))
        with pytest.raises(ValueError):
            IntervalNearestNeighbor().fit(np.empty((0, 2)), np.array([]))

    def test_predict_before_fit_raises(self, rng):
        with pytest.raises(RuntimeError):
            IntervalNearestNeighbor().predict(rng.normal(size=(2, 2)))


class TestIntervalKMeans:
    def test_recovers_two_blobs(self, rng):
        features, labels = _two_blob_features(rng, separation=8.0)
        clustering = IntervalKMeans(n_clusters=2, seed=0).fit_predict(features)
        assert kmeans_nmi(features, labels, n_clusters=2, seed=0) > 0.9
        assert set(np.unique(clustering)) <= {0, 1}

    def test_interval_features_supported(self, rng):
        features, labels = _two_blob_features(rng, separation=8.0)
        intervals = IntervalMatrix(features - 0.05, features + 0.05)
        assert kmeans_nmi(intervals, labels, n_clusters=2, seed=0) > 0.9

    def test_inertia_recorded_and_nonnegative(self, rng):
        features, _ = _two_blob_features(rng)
        model = IntervalKMeans(n_clusters=2, seed=0).fit(features)
        assert model.inertia_ >= 0.0
        assert model.cluster_centers_.shape[0] == 2

    def test_more_clusters_lower_inertia(self, rng):
        features, _ = _two_blob_features(rng, n_per_class=25)
        inertia_2 = IntervalKMeans(n_clusters=2, seed=0).fit(features).inertia_
        inertia_6 = IntervalKMeans(n_clusters=6, seed=0).fit(features).inertia_
        assert inertia_6 <= inertia_2 + 1e-9

    def test_too_many_clusters_raises(self, rng):
        with pytest.raises(ValueError):
            IntervalKMeans(n_clusters=10).fit(rng.normal(size=(4, 2)))

    def test_invalid_cluster_count_raises(self):
        with pytest.raises(ValueError):
            IntervalKMeans(n_clusters=0)

    def test_kmeans_nmi_default_cluster_count(self, rng):
        features, labels = _two_blob_features(rng, separation=8.0)
        assert kmeans_nmi(features, labels, seed=0) > 0.9


class TestMethodKeyFeatures:
    def test_kmeans_nmi_accepts_method_key(self):
        from repro.interval.random import random_interval_matrix

        matrix = random_interval_matrix((12, 10), interval_intensity=0.3, rng=5)
        labels = np.repeat([0, 1, 2], 4)
        score = kmeans_nmi(matrix, labels, seed=0, method="isvd2", rank=3, target="b")
        assert 0.0 <= score <= 1.0

    def test_kmeans_nmi_method_key_requires_rank(self):
        from repro.interval.random import random_interval_matrix

        matrix = random_interval_matrix((8, 6), interval_intensity=0.3, rng=5)
        with pytest.raises(ValueError, match="rank"):
            kmeans_nmi(matrix, np.zeros(8), method="isvd2")

    def test_latent_features_for_every_registered_key(self):
        from repro.core import registry
        from repro.eval.features import latent_features
        from repro.interval.random import random_interval_matrix

        matrix = random_interval_matrix((10, 8), interval_intensity=0.3, rng=6)
        for key in registry.available():
            features = latent_features(matrix, key, rank=3, seed=2)
            assert features.shape[0] == matrix.shape[0]
