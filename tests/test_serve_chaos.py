"""Chaos tier: live servers under injected faults, end to end.

Where :mod:`tests.test_serve_faults` proves each recovery mechanism in
isolation, this tier proves the *service-level* claims with concurrent
HTTP traffic against worker fleets armed with fault plans:

* **zero wrong bytes** — every 200 response from a crash-riddled fleet is
  byte-identical to the in-process reference server over the same store;
  faults may cost availability (503/504), never correctness;
* **degraded responses are flagged** — under ``--degraded partial`` every
  answer missing a shard carries ``"degraded": true`` and the exact
  missing-shard list, and item-space answers never degrade at all;
* **latency is bounded by the deadline** — p99 under chaos stays within
  the request timeout (plus client-side slack), because stalls surface as
  504s instead of open-ended hangs;
* **the breaker lifecycle is observable** — ``/healthz`` (and therefore
  ``repro models --url``) reports open breakers, restart counts and last
  failure reasons while the chaos is ongoing.

Marked ``chaos`` so CI can run it as its own job under a hard timeout.
"""

import http.client
import json
import threading
import time

import numpy as np
import pytest

from repro.core import registry
from repro.interval.random import random_interval_matrix
from repro.serve.async_http import create_async_server
from repro.serve.resilience import RetryPolicy
from repro.serve.shard import ShardedModelStore

pytestmark = pytest.mark.chaos

#: Worker tuning shared by the scenarios: fast retries, and a breaker
#: generous enough that transient-crash scenarios never trip it (the
#: breaker gets its own scenario with a tight threshold).
FAST_WORKERS = dict(retry=RetryPolicy(attempts=3, backoff=0.02,
                                      max_backoff=0.1, jitter=0.0),
                    monitor_interval=0.1)


def _request(address, method, path, payload=None, timeout=30):
    """One HTTP exchange; returns (status, body bytes, headers dict)."""
    connection = http.client.HTTPConnection(*address, timeout=timeout)
    try:
        body = None if payload is None else json.dumps(payload).encode()
        connection.request(method, path, body=body,
                           headers={"Content-Type": "application/json"})
        response = connection.getresponse()
        return response.status, response.read(), dict(response.getheaders())
    finally:
        connection.close()


@pytest.fixture(scope="module")
def model():
    matrix = random_interval_matrix((24, 10), interval_intensity=0.5, rng=7)
    decomposition = registry.get("isvd4").fit(matrix, 4, target="b")
    return matrix, decomposition


@pytest.fixture(scope="module")
def store(tmp_path_factory, model):
    matrix, decomposition = model
    sharded = ShardedModelStore(tmp_path_factory.mktemp("chaos-models"))
    sharded.save_sharded("m", decomposition, 3, matrix=matrix)
    return sharded


@pytest.fixture(scope="module")
def payloads(model):
    matrix, _ = model
    rows = {"lower": matrix.lower.tolist(), "upper": matrix.upper.tolist()}
    return {"recommend": {"model": "m", "k": 4, **rows},
            "neighbors": {"model": "m", "k": 3, **rows}}


@pytest.fixture(scope="module")
def reference(store, payloads):
    """Ground-truth bodies from the in-process (fault-free) router."""
    server = create_async_server(store, port=0, max_batch=8,
                                 batch_delay=0.001)
    address = server.start_background()
    try:
        bodies = {}
        for name, payload in payloads.items():
            status, body, _ = _request(address, "POST", f"/{name}", payload)
            assert status == 200
            bodies[name] = body
        return bodies
    finally:
        server.stop()


def _chaos_server(store, faults, *, degraded="fail", request_timeout=5.0,
                  **worker_overrides):
    options = dict(FAST_WORKERS, faults=faults, **worker_overrides)
    server = create_async_server(store, port=0, max_batch=8,
                                 batch_delay=0.001, workers=True,
                                 request_timeout=request_timeout,
                                 degraded=degraded, worker_options=options)
    return server, server.start_background()


class TestCrashChaosKeepsBytesExact:
    def test_concurrent_traffic_over_crashing_workers(self, store, payloads,
                                                      reference):
        # Every worker crashes on its third top_k_items: with four clients
        # hammering /recommend, workers die and respawn continuously for
        # the whole run.  Availability may dip (504 when a crash storm
        # outlasts the deadline) — bytes may not.
        server, address = _chaos_server(
            store, "before_reply=crash(op=top_k_items,after=2)",
            request_timeout=5.0, breaker_threshold=1000)
        try:
            outcomes = []  # (status, body, elapsed) triples, all threads
            errors = []
            stop_at = time.monotonic() + 6.0

            def hammer():
                while time.monotonic() < stop_at:
                    started = time.monotonic()
                    try:
                        status, body, _ = _request(
                            address, "POST", "/recommend",
                            payloads["recommend"], timeout=30)
                    except Exception as error:  # noqa: BLE001
                        errors.append(repr(error))
                        return
                    outcomes.append(
                        (status, body, time.monotonic() - started))

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            assert not errors  # no dropped connections, ever
            statuses = [status for status, _, _ in outcomes]
            successes = [body for status, body, _ in outcomes
                         if status == 200]
            assert len(successes) >= 10  # the fleet kept serving
            assert set(statuses) <= {200, 503, 504}  # crash never leaks a 500
            # The headline invariant: zero non-degraded wrong bytes.
            assert all(body == reference["recommend"] for body in successes)
            # p99 latency is bounded by the request deadline (+ merge and
            # client slack) — a crash mid-request costs a retry, not a hang.
            latencies = sorted(elapsed for _, _, elapsed in outcomes)
            p99 = latencies[min(len(latencies) - 1,
                                int(0.99 * len(latencies)))]
            assert p99 < 5.0 + 2.0
            # The chaos was real: the fleet actually died and recovered.
            status, body, _ = _request(address, "GET", "/healthz")
            assert status == 200
            workers = json.loads(body)["serving"]["m"]["workers"]
            assert sum(worker["restarts"] for worker in workers) >= 3
        finally:
            server.stop()


class TestStallsBecomeDeadlines:
    def test_stalled_gather_returns_504_within_budget(self, store, payloads,
                                                      reference):
        # Every candidates request stalls for 3s against a 1s deadline:
        # /neighbors must come back as a prompt 504, while /recommend
        # (item space, unfaulted) stays exact throughout.
        server, address = _chaos_server(
            store, "before_reply=stall(seconds=3,op=candidates)",
            request_timeout=1.0)
        try:
            started = time.monotonic()
            status, body, _ = _request(address, "POST", "/neighbors",
                                       payloads["neighbors"])
            elapsed = time.monotonic() - started
            assert status == 504
            assert "deadline" in json.loads(body)["error"]
            assert elapsed < 2.5  # deadline cut the 3s stall short
            status, body, _ = _request(address, "POST", "/recommend",
                                       payloads["recommend"])
            assert (status, body) == (200, reference["recommend"])
        finally:
            server.stop()


class TestBreakerAndDegradedMode:
    FAULT = "before_reply=crash(op=candidates,shard=1)"
    BREAKER = dict(breaker_threshold=2, breaker_window=30.0,
                   breaker_cooldown=60.0)

    def test_fail_fast_url_surface_503_with_retry_after(self, store,
                                                        payloads, reference):
        server, address = _chaos_server(store, self.FAULT, degraded="fail",
                                        **self.BREAKER)
        try:
            status, body, headers = _request(address, "POST", "/neighbors",
                                             payloads["neighbors"])
            assert status == 503
            assert "shard 1" in json.loads(body)["error"]
            assert int(headers["Retry-After"]) >= 1
            # Item-space traffic reroutes around the broken shard instead.
            status, body, _ = _request(address, "POST", "/recommend",
                                       payloads["recommend"])
            assert (status, body) == (200, reference["recommend"])
        finally:
            server.stop()

    def test_partial_mode_flags_every_degraded_answer(self, store, payloads,
                                                      reference, capsys):
        server, address = _chaos_server(store, self.FAULT,
                                        degraded="partial", **self.BREAKER)
        try:
            answers = []
            for _ in range(6):
                status, body, _ = _request(address, "POST", "/neighbors",
                                           payloads["neighbors"])
                assert status == 200
                answers.append(json.loads(body))
            # Every answer missing shard 1 says so — loudly and exactly.
            for answer in answers:
                assert answer["degraded"] is True
                assert answer["missing_shards"] == [1]
            # Degradation is deterministic: the live-shard merge is exact,
            # so every degraded body is the same bytes as every other.
            assert len({json.dumps(a, sort_keys=True) for a in answers}) == 1
            # Item-space answers never degrade, even in partial mode.
            status, body, _ = _request(address, "POST", "/recommend",
                                       payloads["recommend"])
            assert (status, body) == (200, reference["recommend"])
            assert "degraded" not in json.loads(body)

            # The crash loop tripped shard 1's breaker, and the whole story
            # is visible from the health surface...
            status, body, _ = _request(address, "GET", "/healthz")
            health = json.loads(body)
            assert health["status"] == "degraded"
            workers = health["serving"]["m"]["workers"]
            broken = workers[1]
            assert broken["breaker"]["state"] == "open"
            assert broken["restarts"] >= 1
            assert broken["last_failure"]
            assert all(worker["breaker"]["state"] == "closed"
                       for worker in workers if worker["shard"] != 1)

            # ...including through the operator CLI pointed at the server.
            from repro.cli import main
            assert main(["models", "--url",
                         f"http://{address[0]}:{address[1]}"]) == 0
            out = capsys.readouterr().out
            assert "server status: degraded" in out
            assert "open" in out
        finally:
            server.stop()


class TestChaosLeavesNoResidue:
    def test_fleet_shutdown_reaps_every_worker(self, store, payloads):
        # A stalled worker must not survive server shutdown as an orphan —
        # the CI chaos job additionally greps the process table after the
        # whole tier to enforce this globally.
        server, address = _chaos_server(
            store, "before_reply=stall(seconds=2,op=candidates)",
            request_timeout=0.5)
        app = server.app
        engine = app.engine("m")
        status, _, _ = _request(address, "POST", "/neighbors",
                                payloads["neighbors"])
        assert status == 504
        pids = [worker["pid"] for worker in engine.liveness()]
        server.stop()
        deadline = time.monotonic() + 10.0
        import os
        remaining = set(pids)
        while remaining and time.monotonic() < deadline:
            for pid in list(remaining):
                try:
                    os.kill(pid, 0)
                except OSError:
                    remaining.discard(pid)
            time.sleep(0.05)
        assert not remaining, f"orphaned worker pids: {sorted(remaining)}"
