"""Tests for the classification/clustering/regression metrics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval.metrics import (
    accuracy_score,
    f1_macro,
    normalized_mutual_information,
    rmse_score,
)


class TestF1Macro:
    def test_perfect_prediction(self):
        labels = np.array([0, 1, 2, 0, 1, 2])
        assert f1_macro(labels, labels) == 1.0

    def test_all_wrong_prediction(self):
        truth = np.array([0, 0, 1, 1])
        prediction = np.array([1, 1, 0, 0])
        assert f1_macro(truth, prediction) == 0.0

    def test_known_value(self):
        truth = np.array([0, 0, 1, 1])
        prediction = np.array([0, 1, 1, 1])
        # class 0: precision 1, recall 0.5 -> F1 = 2/3; class 1: precision 2/3, recall 1 -> 0.8.
        assert f1_macro(truth, prediction) == pytest.approx((2 / 3 + 0.8) / 2)

    def test_missing_class_in_prediction(self):
        truth = np.array([0, 1, 2])
        prediction = np.array([0, 1, 1])
        assert 0.0 < f1_macro(truth, prediction) < 1.0

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            f1_macro(np.array([0, 1]), np.array([0]))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            f1_macro(np.array([]), np.array([]))

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 3), min_size=2, max_size=30),
           st.lists(st.integers(0, 3), min_size=2, max_size=30))
    def test_bounded_between_zero_and_one(self, truth, prediction):
        size = min(len(truth), len(prediction))
        score = f1_macro(np.array(truth[:size]), np.array(prediction[:size]))
        assert 0.0 <= score <= 1.0


class TestAccuracy:
    def test_perfect(self):
        assert accuracy_score(np.array([1, 2]), np.array([1, 2])) == 1.0

    def test_half(self):
        assert accuracy_score(np.array([1, 2]), np.array([1, 3])) == 0.5


class TestNMI:
    def test_identical_labelings(self):
        labels = np.array([0, 0, 1, 1, 2, 2])
        assert normalized_mutual_information(labels, labels) == pytest.approx(1.0)

    def test_permuted_cluster_ids_still_perfect(self):
        truth = np.array([0, 0, 1, 1, 2, 2])
        prediction = np.array([5, 5, 9, 9, 7, 7])
        assert normalized_mutual_information(truth, prediction) == pytest.approx(1.0)

    def test_independent_labelings_score_low(self):
        rng = np.random.default_rng(0)
        truth = rng.integers(0, 4, size=2000)
        prediction = rng.integers(0, 4, size=2000)
        assert normalized_mutual_information(truth, prediction) < 0.05

    def test_single_cluster_gives_zero(self):
        truth = np.array([0, 1, 0, 1])
        prediction = np.zeros(4, dtype=int)
        assert normalized_mutual_information(truth, prediction) == 0.0

    def test_symmetry(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, size=100)
        b = rng.integers(0, 5, size=100)
        assert normalized_mutual_information(a, b) == pytest.approx(
            normalized_mutual_information(b, a)
        )

    @settings(max_examples=30, deadline=None)
    @given(st.lists(st.integers(0, 4), min_size=4, max_size=40),
           st.integers(0, 1000))
    def test_bounded(self, labels, seed):
        labels = np.array(labels)
        prediction = np.random.default_rng(seed).integers(0, 3, size=labels.size)
        score = normalized_mutual_information(labels, prediction)
        assert 0.0 <= score <= 1.0


class TestRmseScore:
    def test_zero_for_identical(self):
        values = np.arange(6.0).reshape(2, 3)
        assert rmse_score(values, values) == 0.0

    def test_known_value(self):
        assert rmse_score(np.array([0.0, 0.0]), np.array([1.0, 1.0])) == pytest.approx(1.0)

    def test_masked(self):
        truth = np.array([1.0, 2.0, 3.0])
        prediction = np.array([1.0, 2.0, 100.0])
        mask = np.array([True, True, False])
        assert rmse_score(truth, prediction, mask) == 0.0

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            rmse_score(np.zeros(3), np.zeros(3), np.zeros(3, dtype=bool))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse_score(np.zeros(3), np.zeros(4))
