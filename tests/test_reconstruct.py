"""Tests for matrix reconstruction per decomposition target (Algorithms 12-14)."""

import numpy as np
import pytest

from repro.core.isvd import isvd
from repro.core.reconstruct import (
    reconstruct,
    reconstruct_target_a,
    reconstruct_target_b,
    reconstruct_target_c,
)
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix


@pytest.fixture(scope="module")
def matrix():
    return random_interval_matrix((15, 20), interval_intensity=0.4, rng=13)


class TestDispatch:
    def test_target_a_dispatch(self, matrix):
        decomposition = isvd(matrix, 6, method="isvd4", target="a")
        assert reconstruct(decomposition).allclose(reconstruct_target_a(decomposition))

    def test_target_b_dispatch(self, matrix):
        decomposition = isvd(matrix, 6, method="isvd4", target="b")
        assert reconstruct(decomposition).allclose(reconstruct_target_b(decomposition))

    def test_target_c_dispatch(self, matrix):
        decomposition = isvd(matrix, 6, method="isvd4", target="c")
        assert reconstruct(decomposition).allclose(reconstruct_target_c(decomposition))


class TestShapesAndValidity:
    @pytest.mark.parametrize("target", ["a", "b", "c"])
    def test_reconstruction_shape(self, matrix, target):
        decomposition = isvd(matrix, 6, method="isvd3", target=target)
        assert reconstruct(decomposition).shape == matrix.shape

    @pytest.mark.parametrize("target", ["a", "b", "c"])
    def test_reconstruction_is_valid_interval_matrix(self, matrix, target):
        decomposition = isvd(matrix, 6, method="isvd3", target=target)
        assert reconstruct(decomposition).is_valid()

    def test_target_c_reconstruction_is_scalar(self, matrix):
        decomposition = isvd(matrix, 6, method="isvd2", target="c")
        assert reconstruct(decomposition).is_scalar()

    def test_target_b_reconstruction_has_width(self, matrix):
        decomposition = isvd(matrix, 6, method="isvd4", target="b")
        assert reconstruct(decomposition).mean_span() > 0.0

    def test_target_a_reconstruction_widest(self, matrix):
        """Interval factors propagate more width than the scalar-factor targets."""
        a = reconstruct(isvd(matrix, 6, method="isvd1", target="a"))
        b = reconstruct(isvd(matrix, 6, method="isvd1", target="b"))
        assert a.mean_span() >= b.mean_span() - 1e-9


class TestScalarExactness:
    def test_full_rank_scalar_matrix_exact(self, rng):
        scalar = IntervalMatrix.from_scalar(rng.uniform(0, 1, size=(8, 10)))
        decomposition = isvd(scalar, 8, method="isvd1", target="b")
        rebuilt = reconstruct(decomposition)
        np.testing.assert_allclose(rebuilt.midpoint(), scalar.midpoint(), atol=1e-6)

    def test_low_rank_scalar_matrix_exact_at_true_rank(self, rng):
        left = rng.normal(size=(10, 3))
        right = rng.normal(size=(3, 12))
        scalar = IntervalMatrix.from_scalar(left @ right)
        decomposition = isvd(scalar, 3, method="isvd1", target="c")
        np.testing.assert_allclose(reconstruct(decomposition).midpoint(),
                                   scalar.midpoint(), atol=1e-6)
