"""Tests for the accuracy measures (Definition 5) and error helpers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import (
    accuracy_from_error,
    harmonic_mean,
    harmonic_mean_accuracy,
    interval_rmse,
    reconstruction_accuracy,
    relative_error,
    rmse,
)
from repro.core.isvd import isvd
from repro.interval.array import IntervalMatrix
from repro.interval.random import random_interval_matrix


class TestRelativeError:
    def test_zero_for_identical(self, rng):
        matrix = rng.normal(size=(5, 5))
        assert relative_error(matrix, matrix) == 0.0

    def test_one_for_zero_approximation(self, rng):
        matrix = rng.normal(size=(5, 5))
        assert relative_error(matrix, np.zeros_like(matrix)) == pytest.approx(1.0)

    def test_zero_original_zero_approximation(self):
        assert relative_error(np.zeros((3, 3)), np.zeros((3, 3))) == 0.0

    def test_zero_original_nonzero_approximation_is_inf(self):
        assert relative_error(np.zeros((3, 3)), np.ones((3, 3))) == float("inf")

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            relative_error(np.zeros((2, 2)), np.zeros((3, 3)))


class TestAccuracyAndHarmonicMean:
    def test_accuracy_clamped_at_zero(self):
        assert accuracy_from_error(1.7) == 0.0
        assert accuracy_from_error(0.3) == pytest.approx(0.7)

    def test_harmonic_mean_basic(self):
        assert harmonic_mean(1.0, 1.0) == 1.0
        assert harmonic_mean(0.5, 1.0) == pytest.approx(2 / 3)

    def test_harmonic_mean_zero_dominates(self):
        assert harmonic_mean(0.0, 0.9) == 0.0

    def test_harmonic_mean_negative_raises(self):
        with pytest.raises(ValueError):
            harmonic_mean(-0.1, 0.5)

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0.0, 1.0), st.floats(0.0, 1.0))
    def test_harmonic_mean_between_min_and_max(self, a, b):
        value = harmonic_mean(a, b)
        if a == 0.0 or b == 0.0:
            assert value == 0.0
        else:
            assert min(a, b) - 1e-12 <= value <= max(a, b) + 1e-12


class TestReconstructionAccuracy:
    def test_perfect_reconstruction(self, small_interval_matrix):
        report = reconstruction_accuracy(small_interval_matrix, small_interval_matrix.copy())
        assert report.h_mean == pytest.approx(1.0)
        assert "H-mean" in str(report)

    def test_degraded_reconstruction_scores_lower(self, small_interval_matrix):
        noisy = small_interval_matrix + IntervalMatrix.from_scalar(
            0.3 * np.ones(small_interval_matrix.shape)
        )
        perfect = reconstruction_accuracy(small_interval_matrix, small_interval_matrix)
        degraded = reconstruction_accuracy(small_interval_matrix, noisy)
        assert degraded.h_mean < perfect.h_mean

    def test_accepts_decomposition_object(self):
        matrix = random_interval_matrix((12, 15), interval_intensity=0.3, rng=1)
        decomposition = isvd(matrix, 6, method="isvd4", target="b")
        direct = harmonic_mean_accuracy(matrix, decomposition)
        assert 0.0 <= direct <= 1.0

    def test_accepts_reconstruction_matrix(self, small_interval_matrix):
        score = harmonic_mean_accuracy(small_interval_matrix, small_interval_matrix.copy())
        assert score == pytest.approx(1.0)

    def test_h_mean_in_unit_interval(self):
        matrix = random_interval_matrix((10, 12), interval_intensity=1.0, rng=2)
        for method, target in (("isvd0", "c"), ("isvd4", "b"), ("isvd1", "a")):
            decomposition = isvd(matrix, 4, method=method, target=target)
            assert 0.0 <= harmonic_mean_accuracy(matrix, decomposition) <= 1.0


class TestRmse:
    def test_zero_for_identical(self, rng):
        matrix = rng.normal(size=(4, 4))
        assert rmse(matrix, matrix) == 0.0

    def test_known_value(self):
        assert rmse(np.array([[0.0, 0.0]]), np.array([[3.0, 4.0]])) == pytest.approx(
            np.sqrt(12.5)
        )

    def test_masked(self):
        truth = np.array([[1.0, 2.0]])
        prediction = np.array([[1.0, 5.0]])
        mask = np.array([[True, False]])
        assert rmse(truth, prediction, mask) == 0.0

    def test_empty_mask_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((2, 2), dtype=bool))

    def test_mask_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            rmse(np.zeros((2, 2)), np.zeros((2, 2)), np.zeros((3, 3), dtype=bool))

    def test_interval_rmse_averages_endpoints(self):
        original = IntervalMatrix([[0.0]], [[2.0]])
        shifted = IntervalMatrix([[1.0]], [[2.0]])
        assert interval_rmse(original, shifted) == pytest.approx(0.5)
