"""Tests for row-range sharding: planner, store, scatter-gather parity.

The headline property — asserted both with hypothesis over tie-heavy
synthetic models and with fitted decompositions — is that the
:class:`~repro.serve.shard.ShardedQueryEngine` is **byte-identical** to the
single :class:`~repro.serve.query.QueryEngine` over the merged model: same
indices, same score bits, for every query type, shard count, rank, and input.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import io as repro_io
from repro.core import registry
from repro.core.result import IntervalDecomposition
from repro.interval.array import IntervalMatrix
from repro.interval.sparse import SparseIntervalMatrix
from repro.serve.query import QueryEngine, top_k, top_k_from_candidates
from repro.serve.shard import (
    ShardedModelStore,
    ShardedQueryEngine,
    ShardPlanner,
    merge_shards,
    plan_row_ranges,
)
from repro.serve.store import ModelStore, ModelStoreError


@pytest.fixture
def fitted(small_interval_matrix):
    decomposition = registry.get("isvd4").fit(small_interval_matrix, 4, target="b")
    return small_interval_matrix, decomposition


def _assert_same_result(expected, actual):
    np.testing.assert_array_equal(expected.indices, actual.indices)
    np.testing.assert_array_equal(expected.scores, actual.scores)


class TestPlanner:
    def test_ranges_are_contiguous_and_balanced(self):
        assert plan_row_ranges(10, 3) == ((0, 4), (4, 7), (7, 10))
        assert plan_row_ranges(8, 4) == ((0, 2), (2, 4), (4, 6), (6, 8))
        assert plan_row_ranges(5, 1) == ((0, 5),)

    def test_rejects_empty_shards(self):
        with pytest.raises(ValueError, match="non-empty"):
            plan_row_ranges(3, 4)
        with pytest.raises(ValueError, match="n_shards"):
            plan_row_ranges(3, 0)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 200), st.integers(1, 16))
    def test_any_plan_partitions_the_rows(self, n_rows, n_shards):
        if n_shards > n_rows:
            with pytest.raises(ValueError):
                plan_row_ranges(n_rows, n_shards)
            return
        ranges = plan_row_ranges(n_rows, n_shards)
        assert ranges[0][0] == 0 and ranges[-1][1] == n_rows
        sizes = [stop - start for start, stop in ranges]
        assert all(s >= 1 for s in sizes)
        assert max(sizes) - min(sizes) <= 1
        assert all(ranges[i][1] == ranges[i + 1][0] for i in range(len(ranges) - 1))

    def test_split_slices_u_and_replicates_item_factors(self, fitted):
        _, decomposition = fitted
        shards = ShardPlanner(3).split(decomposition)
        assert [s.shape[0] for s in shards] == [4, 4, 4]
        for index, shard in enumerate(shards):
            assert shard.rank == decomposition.rank
            assert shard.metadata["shard_index"] == index
            np.testing.assert_array_equal(np.asarray(shard.v),
                                          np.asarray(decomposition.v))
        merged = merge_shards(shards)
        np.testing.assert_array_equal(merged.u_scalar(), decomposition.u_scalar())

    def test_merge_refuses_mixed_models(self, fitted):
        matrix, decomposition = fitted
        other = registry.get("isvd0").fit(matrix, 4, target="c")
        with pytest.raises(ValueError, match="different models"):
            merge_shards([ShardPlanner(2).split(decomposition)[0],
                          ShardPlanner(2).split(other)[1]])


def _tie_heavy_engine_pair(n_users, n_items, rank, n_shards, seed):
    """(unsharded, sharded) engines over a small-integer-valued model.

    Integer factors make exact score and distance ties common — the inputs
    where a selection that is not a total order would diverge between the
    sharded merge and the single engine.
    """
    rng = np.random.default_rng(seed)
    u = rng.integers(-2, 3, size=(n_users, rank)).astype(float)
    sigma_lo = rng.integers(0, 3, size=rank).astype(float)
    sigma = IntervalMatrix(np.diag(sigma_lo),
                           np.diag(sigma_lo + rng.integers(0, 2, size=rank)),
                           check=False)
    v = rng.integers(-2, 3, size=(n_items, rank)).astype(float)
    decomposition = IntervalDecomposition(
        u=u, sigma=sigma, v=v, target="b", method="synthetic", rank=rank)
    shards = ShardPlanner(n_shards).split(decomposition)
    return QueryEngine(decomposition), ShardedQueryEngine(shards)


class TestScatterGatherParity:
    """Sharded results must equal unsharded results bit for bit."""

    @settings(max_examples=25, deadline=None)
    @given(
        n_users=st.integers(4, 24),
        n_items=st.integers(3, 10),
        rank=st.integers(1, 3),
        n_shards=st.integers(1, 5),
        k=st.integers(1, 12),
        n_queries=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_tie_heavy_topk_and_neighbors_byte_identical(
            self, n_users, n_items, rank, n_shards, k, n_queries, seed):
        n_shards = min(n_shards, n_users)
        unsharded, sharded = _tie_heavy_engine_pair(
            n_users, n_items, rank, n_shards, seed)
        rng = np.random.default_rng(seed + 1)
        lower = rng.integers(-2, 3, size=(n_queries, n_items)).astype(float)
        queries = IntervalMatrix(
            lower, lower + rng.integers(0, 2, size=lower.shape), check=False)

        _assert_same_result(unsharded.top_k_items(queries, k),
                            sharded.top_k_items(queries, k))
        _assert_same_result(unsharded.nearest_neighbors(queries, k),
                            sharded.nearest_neighbors(queries, k))
        np.testing.assert_array_equal(unsharded.neighbor_distances(queries),
                                      sharded.neighbor_distances(queries))
        sharded.close()

    @settings(max_examples=25, deadline=None)
    @given(
        n_users=st.integers(4, 24),
        n_shards=st.integers(1, 5),
        seed=st.integers(0, 10_000),
    )
    def test_stored_user_queries_byte_identical(self, n_users, n_shards, seed):
        n_shards = min(n_shards, n_users)
        unsharded, sharded = _tie_heavy_engine_pair(n_users, 6, 2, n_shards, seed)
        rng = np.random.default_rng(seed + 2)
        indices = rng.integers(-n_users, n_users, size=7)
        np.testing.assert_array_equal(unsharded.scores_for_users(indices),
                                      sharded.scores_for_users(indices))
        np.testing.assert_array_equal(unsharded.scores_for_users(),
                                      sharded.scores_for_users())
        np.testing.assert_array_equal(unsharded.scores_for_users([]),
                                      sharded.scores_for_users([]))
        _assert_same_result(unsharded.top_k_for_users(indices, 4),
                            sharded.top_k_for_users(indices, 4))
        sharded.close()

    @pytest.mark.parametrize("n_shards", [1, 2, 3, 5])
    def test_fitted_model_parity_dense_queries(self, fitted, n_shards):
        matrix, decomposition = fitted
        unsharded = QueryEngine(decomposition)
        sharded = ShardedQueryEngine(ShardPlanner(n_shards).split(decomposition))
        _assert_same_result(unsharded.top_k_items(matrix, 5),
                            sharded.top_k_items(matrix, 5))
        _assert_same_result(unsharded.nearest_neighbors(matrix, 4),
                            sharded.nearest_neighbors(matrix, 4))
        # Single rows (the micro-batched case) too.
        _assert_same_result(unsharded.top_k_items(matrix.row(0), 3),
                            sharded.top_k_items(matrix.row(0), 3))

    def test_fitted_model_parity_sparse_queries(self, fitted):
        matrix, decomposition = fitted
        unsharded = QueryEngine(decomposition)
        sharded = ShardedQueryEngine(ShardPlanner(4).split(decomposition))
        dense_rows = IntervalMatrix(matrix.lower[:6].copy(),
                                    matrix.upper[:6].copy(), check=False)
        # Knock out some observations so the masked fold-in path runs.
        mask = np.random.default_rng(0).uniform(size=dense_rows.shape) < 0.5
        dense_rows.lower[mask] = 0.0
        dense_rows.upper[mask] = 0.0
        sparse_rows = SparseIntervalMatrix.from_dense(dense_rows)
        _assert_same_result(unsharded.top_k_items(sparse_rows, 5),
                            sharded.top_k_items(sparse_rows, 5))
        _assert_same_result(unsharded.nearest_neighbors(sparse_rows, 3),
                            sharded.nearest_neighbors(sparse_rows, 3))

    def test_engine_rejects_empty_and_mismatched_shards(self, fitted):
        matrix, decomposition = fitted
        with pytest.raises(ValueError, match="at least one"):
            ShardedQueryEngine([])
        # Shards from two different models (same shapes, different factor
        # values) must be refused, not silently mixed.
        other = registry.get("isvd3").fit(matrix, 4, target="b")
        with pytest.raises(ValueError, match="different models"):
            ShardedQueryEngine([ShardPlanner(2).split(decomposition)[0],
                                ShardPlanner(2).split(other)[1]])
        shards = ShardPlanner(2).split(decomposition)
        with pytest.raises(ValueError, match="row ranges"):
            ShardedQueryEngine(shards, row_ranges=[(0, 3), (3, 12)])
        # Too few or too many ranges must fail loudly, not silently drop or
        # misroute shards.
        with pytest.raises(ValueError, match="row ranges for"):
            ShardedQueryEngine(ShardPlanner(4).split(decomposition),
                               row_ranges=[(0, 3), (3, 6), (6, 9)])
        with pytest.raises(ValueError, match="row ranges for"):
            ShardedQueryEngine(shards, row_ranges=[(0, 6), (6, 12), (12, 12)])

    @settings(max_examples=25, deadline=None)
    @given(
        n_users=st.integers(4, 24),
        n_shards=st.integers(1, 5),
        max_k=st.integers(1, 10),
        k=st.integers(1, 10),
        seed=st.integers(0, 10_000),
    )
    def test_candidate_lists_serve_any_smaller_k(self, n_users, n_shards,
                                                 max_k, k, seed):
        """The mixed-k micro-batch contract: candidates gathered at max_k
        merge to the exact nearest_neighbors answer for every k' <= max_k."""
        k = min(k, max_k)
        n_shards = min(n_shards, n_users)
        unsharded, sharded = _tie_heavy_engine_pair(n_users, 6, 2, n_shards, seed)
        rng = np.random.default_rng(seed + 3)
        lower = rng.integers(-2, 3, size=(3, 6)).astype(float)
        queries = IntervalMatrix(lower, lower + 1.0, check=False)
        candidates = sharded.nearest_neighbor_candidates(queries, max_k)
        merged = top_k_from_candidates(candidates.scores, candidates.indices,
                                       k, largest=False)
        expected = unsharded.nearest_neighbors(queries, k)
        np.testing.assert_array_equal(merged.indices, expected.indices)
        np.testing.assert_array_equal(np.sqrt(merged.scores), expected.scores)
        sharded.close()

    def test_out_of_range_user_indices_raise(self, fitted):
        _, decomposition = fitted
        sharded = ShardedQueryEngine(ShardPlanner(3).split(decomposition))
        with pytest.raises(IndexError):
            sharded.scores_for_users([decomposition.shape[0]])
        with pytest.raises(IndexError):
            sharded.scores_for_users([-decomposition.shape[0] - 1])


class TestDeterministicTopK:
    def test_boundary_ties_admitted_by_ascending_index(self):
        scores = np.array([[1.0, 1.0, 1.0, 1.0, 1.0]])
        result = top_k(scores, k=3)
        np.testing.assert_array_equal(result.indices, [[0, 1, 2]])
        result = top_k(scores, k=3, largest=False)
        np.testing.assert_array_equal(result.indices, [[0, 1, 2]])

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 8), st.integers(1, 12), st.integers(1, 15),
           st.integers(0, 10_000), st.booleans())
    def test_matches_full_stable_argsort(self, q, m, k, seed, largest):
        scores = np.random.default_rng(seed).integers(
            -3, 4, size=(q, m)).astype(float)
        result = top_k(scores, k, largest=largest)
        keys = -scores if largest else scores
        expected = np.argsort(keys, axis=1, kind="stable")[:, :min(k, m)]
        np.testing.assert_array_equal(result.indices, expected)

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 20), st.integers(1, 10), st.integers(2, 5),
           st.integers(0, 10_000))
    def test_candidate_merge_equals_global_top_k(self, m, k, n_parts, seed):
        """The scatter-gather composition: per-part top-k + labelled merge
        reproduces the global top-k bit for bit, even on heavy ties."""
        scores = np.random.default_rng(seed).integers(
            -2, 3, size=(3, m)).astype(float)
        n_parts = min(n_parts, m)
        candidate_scores, candidate_indices = [], []
        for start, stop in plan_row_ranges(m, n_parts):
            local = top_k(scores[:, start:stop], k, largest=False)
            candidate_indices.append(local.indices + start)
            candidate_scores.append(local.scores)
        merged = top_k_from_candidates(np.hstack(candidate_scores),
                                       np.hstack(candidate_indices),
                                       min(k, m), largest=False)
        _assert_same_result(top_k(scores, k, largest=False), merged)


class TestShardedModelStore:
    def test_round_trip_and_manifest(self, tmp_path, fitted):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 3, matrix=matrix)
        assert record.shards == 3
        assert store.exists("m")
        shards, manifest = store.load_shards("m")
        assert manifest.row_ranges == ((0, 4), (4, 8), (8, 12))
        assert len(manifest.fingerprints) == 3
        assert [s.shape[0] for s in shards] == [4, 4, 4]
        merged, merged_record = store.load_merged("m")
        assert merged_record == record
        np.testing.assert_array_equal(merged.u_scalar(),
                                      decomposition.u_scalar())

    def test_sharded_models_visible_to_plain_store(self, tmp_path, fitted):
        matrix, decomposition = fitted
        ShardedModelStore(tmp_path / "models").save_sharded(
            "m", decomposition, 2, matrix=matrix)
        plain = ModelStore(tmp_path / "models")
        assert [r.name for r in plain.list()] == ["m"]
        assert plain.list()[0].shards == 2
        assert plain.exists("m")
        with pytest.raises(ModelStoreError, match="sharded"):
            plain.load("m")

    def test_missing_shard_file_hides_and_fails_model(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 3)
        store._shard_path("m", 1, record.generation).unlink()
        assert not store.exists("m")
        assert store.list() == []
        with pytest.raises(ModelStoreError, match="shard"):
            store.load_shards("m")

    def test_swapped_shard_file_fails_fingerprint_check(self, tmp_path, fitted):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 3, matrix=matrix)
        # Swap two shard files behind the manifest's back.
        a = store._shard_path("m", 0, record.generation)
        b = store._shard_path("m", 1, record.generation)
        tmp = tmp_path / "stash.npz"
        a.rename(tmp), b.rename(a), tmp.rename(b)
        with pytest.raises(ModelStoreError, match="fingerprint"):
            store.load_shards("m")
        # Opting out of verification loads whatever is on disk.
        shards, _ = store.load_shards("m", verify=False)
        assert len(shards) == 3

    def test_republish_single_file_removes_stale_shards(self, tmp_path, fitted):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 4, matrix=matrix)
        store.save("m", decomposition, matrix=matrix)
        files = sorted(p.name for p in store.directory.iterdir())
        assert files == ["m.json", "m.npz"]
        assert store.record("m").shards is None

    def test_republish_bumps_generation_and_keeps_previous_until_gc(
            self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        first = store.save_sharded("m", decomposition, 4)
        assert first.generation == 1
        second = store.save_sharded("m", decomposition, 2)
        assert second.generation == 2
        # The superseded generation stays on disk through the swap so a
        # reader holding the old manifest can still open its files...
        files = sorted(p.name for p in store.directory.iterdir())
        assert files == [
            "m.json",
            "m.shard-00-001.npz", "m.shard-00-002.npz",
            "m.shard-01-001.npz", "m.shard-01-002.npz",
            "m.shard-02-001.npz", "m.shard-03-001.npz",
        ]
        # ...a third publish garbage-collects generation 1...
        third = store.save_sharded("m", decomposition, 2)
        assert third.generation == 3
        files = sorted(p.name for p in store.directory.iterdir())
        assert files == [
            "m.json",
            "m.shard-00-002.npz", "m.shard-00-003.npz",
            "m.shard-01-002.npz", "m.shard-01-003.npz",
        ]
        # ...and explicit GC (after drain) leaves only the current one.
        assert store.gc_shard_generations("m") == 2
        files = sorted(p.name for p in store.directory.iterdir())
        assert files == ["m.json", "m.shard-00-003.npz", "m.shard-01-003.npz"]
        assert store.gc_shard_generations("m") == 0

    def test_explicit_generation_must_increase(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 2, generation=7)
        assert record.generation == 7
        with pytest.raises(ModelStoreError, match="generation"):
            store.save_sharded("m", decomposition, 2, generation=7)
        with pytest.raises(ModelStoreError, match="generation"):
            store.save_sharded("m", decomposition, 2, generation=3)
        assert store.save_sharded("m", decomposition, 2).generation == 8

    def test_legacy_unversioned_manifest_still_loads(self, tmp_path, fitted):
        # Manifests written before generation versioning name unversioned
        # shard files and carry no 'generation' key.
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 2)
        payload = json.loads(store._meta_path("m").read_text())
        del payload["generation"]
        for index in range(2):
            store._shard_path("m", index, record.generation).rename(
                store._shard_path("m", index))
        store._meta_path("m").write_text(json.dumps(payload))
        assert store.record("m").generation is None
        assert store.exists("m")
        shards, manifest = store.load_shards("m")
        assert len(shards) == 2 and manifest.record.generation is None
        # Republishing a legacy model starts the generation clock at 1 and
        # keeps the legacy files for in-flight readers until the next GC.
        republished = store.save_sharded("m", decomposition, 2)
        assert republished.generation == 1
        names = {p.name for p in store.directory.iterdir()}
        assert "m.shard-00.npz" in names and "m.shard-00-001.npz" in names
        store.gc_shard_generations("m")
        names = {p.name for p in store.directory.iterdir()}
        assert "m.shard-00.npz" not in names

    def test_republish_sharded_removes_single_file(self, tmp_path, fitted):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save("m", decomposition, matrix=matrix)
        store.save_sharded("m", decomposition, 2, matrix=matrix)
        files = sorted(p.name for p in store.directory.iterdir())
        assert files == ["m.json", "m.shard-00-001.npz", "m.shard-01-001.npz"]

    def test_delete_removes_manifest_and_all_shards(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 3)
        store.delete("m")
        assert list(store.directory.iterdir()) == []

    def test_delete_cleans_up_damaged_models(self, tmp_path, fitted):
        # Deletion is the cleanup path: a half-model (missing shard) or a
        # corrupt sidecar must still be removable, not stranded on disk.
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        half = store.save_sharded("half", decomposition, 3)
        store._shard_path("half", 1, half.generation).unlink()
        store.delete("half")
        assert not list(store.directory.glob("half*"))
        store.save_sharded("corrupt", decomposition, 2)
        store._meta_path("corrupt").write_text("{not json")
        store.delete("corrupt")
        assert not list(store.directory.glob("corrupt*"))

    def test_malformed_row_ranges_raise_store_error(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 2)
        payload = json.loads(store._meta_path("m").read_text())
        payload["row_ranges"] = [[0, 6], 3]
        store._meta_path("m").write_text(json.dumps(payload))
        with pytest.raises(ModelStoreError, match="row_ranges"):
            store.load_shards("m")

    def test_directory_squatting_on_sidecar_path_is_not_a_model(self, tmp_path, fitted):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save("real", decomposition, matrix=matrix)
        (store.directory / "squatter.json").mkdir()
        assert not store.exists("squatter")
        assert [r.name for r in store.list()] == ["real"]
        with pytest.raises(ModelStoreError, match="squatter"):
            store.delete("squatter")

    def test_manifest_of_single_file_model_raises(self, tmp_path, fitted):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save("m", decomposition, matrix=matrix)
        with pytest.raises(ModelStoreError, match="single-file"):
            store.manifest("m")

    def test_shard_suffix_names_are_reserved(self, tmp_path, fitted):
        # A model literally named 'x.shard-01' would share its archive path
        # with shard 1 of sharded model 'x'; both stores refuse the name.
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        with pytest.raises(ModelStoreError, match="reserved"):
            store.save("x.shard-01", decomposition, matrix=matrix)
        with pytest.raises(ModelStoreError, match="reserved"):
            store.save_sharded("x.shard-00", decomposition, 2)

    def test_legacy_shard_suffix_models_stay_readable_and_deletable(
            self, tmp_path, fitted):
        # Stores written before the suffix reservation may hold a model
        # literally named 'backup.shard-01'; reads and deletion must keep
        # working, only *publishing* such names is refused.
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save("anchor", decomposition, matrix=matrix)
        legacy = store.record("anchor").to_dict()
        legacy["name"] = "backup.shard-01"
        repro_io.save_decomposition_npz(decomposition,
                                        store.directory / "backup.shard-01.npz")
        (store.directory / "backup.shard-01.json").write_text(json.dumps(legacy))
        assert store.exists("backup.shard-01")
        assert {r.name for r in store.list()} == {"anchor", "backup.shard-01"}
        loaded, _ = store.load("backup.shard-01")
        assert loaded.rank == decomposition.rank
        # Generation-versioned shard archives ('backup.shard-NN-GGG.npz')
        # never collide with the legacy model's 'backup.shard-01.npz', so
        # publishing 'backup' sharded now coexists with it — and neither
        # stale-shard GC nor deleting 'backup' may touch the legacy files.
        record = store.save_sharded("backup", decomposition, 2)
        assert record.shards == 2
        store.gc_shard_generations("backup")
        assert store.exists("backup.shard-01")
        loaded, _ = store.load("backup.shard-01")
        assert loaded.rank == decomposition.rank
        store.delete("backup")
        assert store.exists("backup.shard-01")
        store.delete("backup.shard-01")
        assert not store.exists("backup.shard-01")

    def test_truncated_shard_file_raises_store_error(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 3)
        store._shard_path("m", 1, record.generation).write_bytes(
            b"not a zip archive")
        with pytest.raises(ModelStoreError, match="not loadable"):
            store.load_shards("m")

    def test_close_is_idempotent_and_engine_stays_usable(self, fitted):
        matrix, decomposition = fitted
        sharded = ShardedQueryEngine(ShardPlanner(3).split(decomposition))
        before = sharded.nearest_neighbors(matrix, 4)
        sharded.close(wait=False)
        sharded.close()
        after = sharded.nearest_neighbors(matrix, 4)  # serial fallback
        _assert_same_result(before, after)

    def test_shard_fingerprints_match_recomputation(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 2)
        shards, manifest = store.load_shards("m")
        assert tuple(repro_io.decomposition_fingerprint(s) for s in shards) \
            == manifest.fingerprints

    def test_manifest_json_is_stable_and_foreign_key_tolerant(self, tmp_path, fitted):
        _, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 2)
        payload = json.loads(store._meta_path("m").read_text())
        assert payload["shards"] == 2
        assert payload["row_ranges"] == [[0, 6], [6, 12]]
        # Extra keys written by future versions must not break readers.
        payload["future_extension"] = {"x": 1}
        store._meta_path("m").write_text(json.dumps(payload))
        assert store.record("m").shards == 2
        store.load_shards("m")


class TestServingAppSharded:
    def test_engine_is_sharded_and_tracks_republish(self, tmp_path, fitted):
        from repro.serve.http import ServingApp

        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 3, matrix=matrix)
        app = ServingApp(store)
        engine = app.engine("m")
        assert isinstance(engine, ShardedQueryEngine)
        assert engine.n_shards == 3
        payload = {"model": "m", "k": 3,
                   "lower": matrix.lower.tolist(), "upper": matrix.upper.tolist()}
        sharded_reply = app.recommend(dict(payload))

        # Republishing single-file swaps the engine type transparently...
        store.save("m", decomposition, matrix=matrix)
        assert isinstance(app.engine("m"), QueryEngine)
        # ...and the answers do not change by a single bit.
        assert app.recommend(dict(payload)) == sharded_reply
        assert app.neighbors(dict(payload))["neighbors"] \
            == [r.tolist() for r in
                QueryEngine(decomposition).nearest_neighbors(matrix, 3).indices]


class TestServingAppShardedBatching:
    def test_micro_batched_neighbors_match_direct_calls(self, tmp_path, fitted):
        from repro.serve.http import ServingApp

        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 3, matrix=matrix)
        app = ServingApp(store, batch_delay=0.0)
        engine = app.engine("m")
        assert isinstance(engine, ShardedQueryEngine)
        batcher = app._batcher("m", "neighbors")
        for slot, k in [(0, 1), (1, 4), (2, 9), (3, 1_000)]:
            row = matrix.row(slot)
            batched, dropped = batcher.submit((IntervalMatrix(
                row.lower.reshape(1, -1), row.upper.reshape(1, -1),
                check=False), k))
            assert dropped == frozenset()  # healthy engines never degrade
            direct = engine.nearest_neighbors(row, k)
            _assert_same_result(direct, batched)


class TestServingAppSingleFlight:
    def test_concurrent_first_requests_load_once(self, tmp_path, fitted):
        import threading

        from repro.serve.http import ServingApp

        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        store.save_sharded("m", decomposition, 3, matrix=matrix)
        app = ServingApp(store)
        loads = []
        original = ShardedModelStore.load_shards

        def counting(self, name, verify=True):
            loads.append(name)
            return original(self, name, verify=verify)

        ShardedModelStore.load_shards = counting
        try:
            barrier = threading.Barrier(8)
            engines = [None] * 8

            def request(i):
                barrier.wait()
                engines[i] = app.engine("m")

            threads = [threading.Thread(target=request, args=(i,))
                       for i in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        finally:
            ShardedModelStore.load_shards = original
        # One load served every concurrent first request; all got the same
        # engine instance.
        assert loads == ["m"]
        assert all(engine is engines[0] for engine in engines)


class TestServingAppDamagedModels:
    def test_truncated_shard_file_is_404_not_500(self, tmp_path, fitted):
        from repro.serve.http import RequestError, ServingApp

        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        record = store.save_sharded("m", decomposition, 3, matrix=matrix)
        store._shard_path("m", 0, record.generation).write_bytes(b"garbage")
        app = ServingApp(store)
        with pytest.raises(RequestError) as excinfo:
            app.recommend({"model": "m", "k": 3,
                           "rows": matrix.midpoint().tolist()})
        assert excinfo.value.status == 404

    def test_truncated_single_file_is_404_not_500(self, tmp_path, fitted):
        from repro.serve.http import RequestError, ServingApp

        matrix, decomposition = fitted
        store = ModelStore(tmp_path / "models")
        store.save("m", decomposition, matrix=matrix)
        (store.directory / "m.npz").write_bytes(b"garbage")
        app = ServingApp(store)
        with pytest.raises(RequestError) as excinfo:
            app.recommend({"model": "m", "k": 3,
                           "rows": matrix.midpoint().tolist()})
        assert excinfo.value.status == 404


class TestShardCLI:
    def _publish(self, tmp_path, fitted, n_shards=None):
        matrix, decomposition = fitted
        store = ShardedModelStore(tmp_path / "models")
        if n_shards:
            store.save_sharded("m", decomposition, n_shards, matrix=matrix)
        else:
            store.save("m", decomposition, matrix=matrix)
        return store

    def test_shard_command_splits_a_single_file_model(self, tmp_path, fitted, capsys):
        from repro.cli import main

        store = self._publish(tmp_path, fitted)
        assert main(["shard", "m", "--shards", "3",
                     "--store", str(store.directory)]) == 0
        out = capsys.readouterr().out
        assert "3 row-range shards" in out
        assert store.record("m").shards == 3
        # Fingerprint carries over from the original publish.
        _, decomposition = fitted
        assert store.record("m").fingerprint is not None

    def test_shard_command_reshards_and_unshards(self, tmp_path, fitted, capsys):
        from repro.cli import main

        store = self._publish(tmp_path, fitted, n_shards=4)
        assert main(["shard", "m", "--shards", "2",
                     "--store", str(store.directory)]) == 0
        assert store.record("m").shards == 2
        assert main(["shard", "m", "--shards", "1",
                     "--store", str(store.directory)]) == 0
        assert store.record("m").shards is None
        store.load("m")  # single-file again

    def test_shard_command_as_new_name(self, tmp_path, fitted, capsys):
        from repro.cli import main

        store = self._publish(tmp_path, fitted)
        assert main(["shard", "m", "--shards", "2", "--as", "m-sharded",
                     "--store", str(store.directory)]) == 0
        assert store.record("m").shards is None
        assert store.record("m-sharded").shards == 2

    def test_shard_command_unknown_model_exits(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="ghost"):
            main(["shard", "ghost", "--shards", "2",
                  "--store", str(tmp_path / "models")])

    def test_shard_command_rejects_bad_target_name_before_loading(
            self, tmp_path, fitted, monkeypatch):
        from repro.cli import main
        from repro.serve import shard as shard_module

        store = self._publish(tmp_path, fitted)
        # The name check must fire before any shard loading/hashing happens.
        monkeypatch.setattr(
            shard_module.ShardedModelStore, "load_merged",
            lambda self, name: pytest.fail("loaded before name validation"))
        with pytest.raises(SystemExit, match="reserved"):
            main(["shard", "m", "--shards", "2", "--as", "bad.shard-01",
                  "--store", str(store.directory)])

    def test_shard_command_corrupt_archive_exits_cleanly(self, tmp_path, fitted):
        from repro.cli import main

        store = self._publish(tmp_path, fitted)
        (store.directory / "m.npz").write_bytes(b"not a zip archive")
        with pytest.raises(SystemExit):
            main(["shard", "m", "--shards", "2",
                  "--store", str(store.directory)])

    def test_decompose_shards_requires_save_model(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="--save-model"):
            main(["decompose", "--npz", "x.npz", "--shards", "2"])

    def test_decompose_too_many_shards_fails_before_the_fit(
            self, tmp_path, fitted, monkeypatch):
        from repro.cli import main
        from repro.core import registry

        matrix, _ = fitted
        npz = tmp_path / "data.npz"
        repro_io.save_interval_npz(matrix, npz)
        info = registry.get("isvd4")
        monkeypatch.setattr(
            type(info), "fit",
            lambda self, *a, **kw: pytest.fail("fitted before shard check"))
        with pytest.raises(SystemExit, match="non-empty shards"):
            main(["decompose", "--npz", str(npz), "--method", "isvd4",
                  "--save-model", "m", "--store", str(tmp_path / "models"),
                  "--shards", str(matrix.shape[0] + 1)])

    def test_decompose_shards_one_means_single_file(self, tmp_path, fitted, capsys):
        from repro.cli import main

        matrix, _ = fitted
        npz = tmp_path / "data.npz"
        repro_io.save_interval_npz(matrix, npz)
        store_dir = tmp_path / "models"
        assert main(["decompose", "--npz", str(npz), "--rank", "3",
                     "--method", "isvd4", "--save-model", "m",
                     "--store", str(store_dir), "--shards", "1"]) == 0
        store = ShardedModelStore(store_dir)
        assert store.record("m").shards is None
        store.load("m")  # plain single-file load works

    def test_decompose_publishes_sharded(self, tmp_path, fitted, capsys):
        from repro.cli import main

        matrix, _ = fitted
        npz = tmp_path / "data.npz"
        repro_io.save_interval_npz(matrix, npz)
        store_dir = tmp_path / "models"
        assert main(["decompose", "--npz", str(npz), "--rank", "3",
                     "--method", "isvd4", "--save-model", "m",
                     "--store", str(store_dir), "--shards", "3"]) == 0
        assert "3 row-range shards" in capsys.readouterr().out
        record = ShardedModelStore(store_dir).record("m")
        assert record.shards == 3 and record.rank == 3
