"""Cross-cutting property-based tests on the core invariants of the library.

These use hypothesis to probe the interval-SVD pipeline with randomly shaped
and randomly filled matrices, asserting the invariants the paper's theory
guarantees (soundness of interval algebra, validity of outputs, behaviour of
the accuracy measure) rather than specific numeric values.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import common_settings, matrix_params, random_matrix

from repro.core.accuracy import harmonic_mean_accuracy, reconstruction_accuracy
from repro.core.ilsa import ilsa
from repro.core.isvd import isvd
from repro.core.reconstruct import reconstruct
from repro.interval.array import IntervalMatrix
from repro.interval.linalg import average_replacement_matrix, interval_matmul
from repro.interval.random import random_interval_matrix

COMMON_SETTINGS = common_settings(max_examples=20)

_matrix_from = random_matrix


class TestDecompositionInvariants:
    @settings(**COMMON_SETTINGS)
    @given(matrix_params, st.sampled_from(["isvd1", "isvd2", "isvd3", "isvd4"]),
           st.sampled_from(["a", "b", "c"]))
    def test_outputs_are_well_formed(self, params, method, target):
        matrix = _matrix_from(params)
        rank = min(4, min(matrix.shape))
        decomposition = isvd(matrix, rank, method=method, target=target)
        assert decomposition.rank == rank
        assert decomposition.shape == matrix.shape
        if decomposition.is_interval_core:
            assert decomposition.sigma.is_valid()
        if isinstance(decomposition.u, IntervalMatrix):
            assert decomposition.u.is_valid()
        if isinstance(decomposition.v, IntervalMatrix):
            assert decomposition.v.is_valid()

    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_hmean_accuracy_in_unit_interval(self, params):
        matrix = _matrix_from(params)
        rank = min(5, min(matrix.shape))
        decomposition = isvd(matrix, rank, method="isvd4", target="b")
        score = harmonic_mean_accuracy(matrix, decomposition)
        assert 0.0 <= score <= 1.0

    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_reconstruction_is_valid_interval_matrix(self, params):
        matrix = _matrix_from(params)
        rank = min(4, min(matrix.shape))
        decomposition = isvd(matrix, rank, method="isvd3", target="a")
        reconstruction = reconstruct(decomposition)
        assert reconstruction.is_valid()
        assert reconstruction.shape == matrix.shape

    @settings(**COMMON_SETTINGS)
    @given(st.integers(6, 14), st.integers(0, 10_000))
    def test_scalar_matrices_decompose_exactly_at_full_rank(self, size, seed):
        values = np.random.default_rng(seed).uniform(0, 1, size=(size, size + 2))
        matrix = IntervalMatrix.from_scalar(values)
        decomposition = isvd(matrix, size, method="isvd1", target="b")
        report = reconstruction_accuracy(matrix, reconstruct(decomposition))
        assert report.h_mean > 0.999


class TestAlgebraInvariants:
    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_gram_matrix_is_symmetric_interval(self, params):
        matrix = _matrix_from(params)
        gram = interval_matmul(matrix.T, matrix)
        np.testing.assert_allclose(gram.lower, gram.lower.T, atol=1e-9)
        np.testing.assert_allclose(gram.upper, gram.upper.T, atol=1e-9)

    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_average_replacement_is_idempotent(self, params):
        matrix = _matrix_from(params)
        # Swap endpoints of some entries to create misordered intervals.
        flipped = IntervalMatrix(matrix.upper.copy(), matrix.lower.copy(), check=False)
        once = average_replacement_matrix(flipped)
        twice = average_replacement_matrix(once)
        assert once == twice

    @settings(**COMMON_SETTINGS)
    @given(matrix_params)
    def test_matmul_width_monotone_in_operand_width(self, params):
        matrix = _matrix_from(params)
        narrow = IntervalMatrix.from_scalar(matrix.midpoint())
        other = IntervalMatrix.from_scalar(
            np.random.default_rng(0).uniform(0, 1, size=(matrix.shape[1], 4))
        )
        wide_product = interval_matmul(matrix, other)
        narrow_product = interval_matmul(narrow, other)
        assert wide_product.mean_span() >= narrow_product.mean_span() - 1e-9


class TestAlignmentInvariants:
    @settings(**COMMON_SETTINGS)
    @given(st.integers(2, 8), st.integers(8, 20), st.integers(0, 10_000))
    def test_alignment_output_is_permutation_with_unit_signs(self, rank, dim, seed):
        rng = np.random.default_rng(seed)
        v_lower = rng.normal(size=(dim, rank))
        v_upper = rng.normal(size=(dim, rank))
        result = ilsa(v_lower, v_upper)
        assert result.is_permutation()
        assert np.all(np.isin(result.signs, (-1.0, 1.0)))
        assert np.all(result.matched_similarity <= 1.0 + 1e-9)
