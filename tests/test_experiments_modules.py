"""Integration tests: every experiment module runs end to end on tiny configs.

These tests use much smaller workloads than the experiment defaults; they check
that each table/figure harness produces well-formed rows and, where cheap to
verify, the qualitative relationships the paper reports.
"""

import numpy as np
import pytest

from repro.datasets.synthetic import SyntheticConfig
from repro.experiments import (
    alignment,
    fig6_overview,
    fig7_anonymized,
    fig8_faces,
    fig9_social,
    fig10_cf,
    table2_sweeps,
    table3_clustering,
)

TINY_SYNTHETIC = SyntheticConfig(shape=(20, 40), rank=8)


@pytest.fixture(scope="module")
def tiny_face_config():
    return fig8_faces.Figure8Config(
        n_subjects=6, images_per_subject=5, resolution=12,
        reconstruction_ranks=(4, 10), classification_ranks=(4, 8),
        nmf_iterations=20, seed=1,
    )


class TestAlignmentExperiments:
    def test_figure3_rows_and_improvement(self):
        config = alignment.AlignmentConfig(synthetic=TINY_SYNTHETIC, trials=2, seed=1)
        result = alignment.run_figure3(config)
        assert len(result.rows) == TINY_SYNTHETIC.rank
        before = np.array(result.column("|cos| before alignment"))
        after = np.array(result.column("|cos| after alignment"))
        assert after.mean() >= before.mean() - 1e-9

    def test_figure5_v_similarity_improves(self):
        config = alignment.AlignmentConfig(synthetic=TINY_SYNTHETIC, trials=2, seed=1)
        result = alignment.run_figure5(config)
        v_before = np.array(result.column("V |cos| before"))
        v_after = np.array(result.column("V |cos| after"))
        assert v_after.mean() >= v_before.mean() - 0.05

    def test_result_text_renders(self):
        config = alignment.AlignmentConfig(synthetic=TINY_SYNTHETIC, trials=1, seed=0)
        text = alignment.run_figure3(config).to_text()
        assert "Figure 3" in text and "note:" in text


class TestFigure6:
    def test_accuracy_table_shape_and_paper_ordering(self):
        config = fig6_overview.Figure6Config(synthetic=TINY_SYNTHETIC, trials=1,
                                             include_lp=False)
        result = fig6_overview.run_accuracy(config)
        rows = result.as_dict_rows()
        scores = {row["method"]: row["H-mean"] for row in rows}
        assert len(rows) == 13
        # Option-b methods should not be worse than the naive ISVD0 baseline.
        assert scores["ISVD4-b"] >= scores["ISVD0"] - 0.05
        assert all(0.0 <= row["H-mean"] <= 1.0 for row in rows)

    def test_timing_table(self):
        config = fig6_overview.Figure6Config(synthetic=TINY_SYNTHETIC, trials=1,
                                             include_lp=False)
        result = fig6_overview.run_timings(config)
        assert len(result.rows) == 5
        totals = result.column("total")
        assert all(total >= 0.0 for total in totals)

    def test_run_returns_both_parts(self):
        config = fig6_overview.Figure6Config(synthetic=TINY_SYNTHETIC, trials=1,
                                             include_lp=False)
        results = fig6_overview.run(config)
        assert set(results) == {"accuracy", "timings"}


class TestTable2:
    def test_single_subtable(self):
        config = table2_sweeps.Table2Config(base=TINY_SYNTHETIC, trials=1)
        result = table2_sweeps.run_interval_density(config)
        assert len(result.rows) == 4
        assert result.headers[1:] == ["ISVD0", "ISVD1-b", "ISVD2-b", "ISVD3-b", "ISVD4-b"]

    def test_rank_sweep_accuracy_grows_with_rank(self):
        config = table2_sweeps.Table2Config(base=TINY_SYNTHETIC, trials=1)
        result = table2_sweeps.run_target_rank(config)
        isvd4_scores = result.column("ISVD4-b")
        assert isvd4_scores[-1] >= isvd4_scores[0]

    def test_unknown_subtable_raises(self):
        with pytest.raises(ValueError):
            table2_sweeps.run(subtables=("z",))

    def test_run_selected_subtables(self):
        config = table2_sweeps.Table2Config(base=TINY_SYNTHETIC, trials=1)
        results = table2_sweeps.run(config, subtables=("a", "e"))
        assert set(results) == {"a", "e"}


class TestFigure7:
    def test_profile_table(self):
        config = fig7_anonymized.Figure7Config(shape=(20, 40), trials=1,
                                               rank_fractions=(1.0, 0.25))
        result = fig7_anonymized.run_profile("medium", config)
        assert len(result.rows) == 13
        assert any("order" in header for header in result.headers)

    def test_unknown_profile_raises(self):
        with pytest.raises(ValueError):
            fig7_anonymized.run_profile("ultra")

    def test_orders_are_a_permutation(self):
        config = fig7_anonymized.Figure7Config(shape=(20, 40), trials=1,
                                               rank_fractions=(0.5,))
        result = fig7_anonymized.run_profile("low", config)
        orders = result.column("50% rank order")
        assert sorted(orders) == list(range(1, 14))


class TestFigure8:
    def test_reconstruction_table(self, tiny_face_config):
        result = fig8_faces.run_reconstruction(tiny_face_config,
                                               methods=("NMF", "ISVD0", "ISVD4-b"))
        assert len(result.rows) == 2
        assert all(value >= 0 for row in result.rows for value in row[1:])

    def test_isvd_reconstruction_not_worse_than_nmf(self, tiny_face_config):
        result = fig8_faces.run_reconstruction(tiny_face_config,
                                               methods=("NMF", "ISVD4-b"))
        for row in result.as_dict_rows():
            assert row["ISVD4-b"] <= row["NMF"] * 1.25

    def test_classification_table(self, tiny_face_config):
        result = fig8_faces.run_nn_classification(
            tiny_face_config, methods=("NMF", "ISVD2-b"))
        for row in result.as_dict_rows():
            assert 0.0 <= row["ISVD2-b"] <= 1.0

    def test_clustering_table(self, tiny_face_config):
        result = fig8_faces.run_clustering(tiny_face_config, methods=("ISVD1-b",))
        for row in result.as_dict_rows():
            assert 0.0 <= row["ISVD1-b"] <= 1.0


class TestTable3:
    def test_rows_per_resolution(self):
        config = table3_clustering.Table3Config(resolutions=(12,), n_subjects=6,
                                                images_per_subject=5, rank=8)
        result = table3_clustering.run(config)
        assert len(result.rows) == 1
        row = result.as_dict_rows()[0]
        assert row["resolution"] == "12x12"
        assert row["scalar time (s)"] > 0.0


class TestFigure9:
    def test_dataset_table(self):
        config = fig9_social.Figure9Config(scale=0.2, rank_fractions=(1.0, 0.5))
        result = fig9_social.run_dataset("movielens", config)
        assert len(result.rows) == 13
        h_means = result.column("100% rank (=19) H-mean")
        assert all(0.0 <= value <= 1.0 for value in h_means)

    def test_unknown_dataset_raises(self):
        with pytest.raises(ValueError):
            fig9_social.run_dataset("netflix")


class TestFigure10:
    def test_rmse_table(self):
        config = fig10_cf.Figure10Config(n_users=60, n_items=120, n_categories=8,
                                         ranks=(4, 10), epochs=10, seed=3)
        result = fig10_cf.run(config)
        assert len(result.rows) == 2
        for row in result.as_dict_rows():
            for model in ("PMF", "I-PMF", "AI-PMF"):
                assert 0.0 < row[model] < 4.0
