"""Tests of the sparse interval linear-algebra subsystem.

The load-bearing facts checked here:

* :class:`SparseIntervalMatrix` keeps the dense validation contract (stored
  ``lower <= upper``, no NaN) over one shared CSR pattern, and converts
  losslessly to/from the dense representation;
* sparse execution of the ``endpoint4`` and ``rump`` kernels agrees with the
  dense execution **bit for bit** on integer-valued operands (where every
  product and partial sum is exactly representable, so any byte difference
  is a structural bug, not floating-point reassociation);
* the blocked dense Gram accumulation is equivalent to the unblocked product
  across block sizes (bitwise on integer data, to tight tolerance on floats),
  and the unblocked default stays byte-identical to ``interval_matmul``;
* sparse input threads end to end: isvd2/3/4, the registry (densifying
  fallback for non-sparse-aware methods), the experiment engine's cache
  fingerprints, NPZ round-trips, the sparse ratings generators, fold-in with
  observed-only least squares, and the CLI.
"""

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import (
    common_settings,
    integer_interval_matrix,
    sparse_integer_pair,
    sparse_pair_params,
)

from repro.core.isvd import isvd
from repro.interval.array import IntervalMatrix
from repro.interval.kernels import available_kernels, get_kernel
from repro.interval.linalg import interval_gram, interval_matmul
from repro.interval.random import random_interval_matrix
from repro.interval.scalar import IntervalError
from repro.interval.sparse import (
    SparseIntervalMatrix,
    as_interval_operand,
    is_sparse_interval,
)

COMMON_SETTINGS = common_settings(max_examples=25)

#: Kernels with a sparse execution path (the parity suite's subjects).
SPARSE_KERNELS = ("endpoint4", "rump")

pair_params = sparse_pair_params

_pair = sparse_integer_pair


def _bytes_equal(sparse_result, dense_result) -> bool:
    produced = sparse_result.to_dense() if is_sparse_interval(sparse_result) else sparse_result
    return (produced.lower.tobytes() == dense_result.lower.tobytes()
            and produced.upper.tobytes() == dense_result.upper.tobytes())


class TestConstruction:
    def test_from_dense_roundtrip_is_byte_identical(self):
        dense = integer_interval_matrix(np.random.default_rng(0), 9, 5, 0.4)
        sparse = SparseIntervalMatrix.from_dense(dense)
        back = sparse.to_dense()
        assert back.lower.tobytes() == dense.lower.tobytes()
        assert back.upper.tobytes() == dense.upper.tobytes()

    def test_zero_zero_cells_are_dropped(self):
        dense = IntervalMatrix([[0.0, 1.0], [0.0, 0.0]], [[0.0, 2.0], [3.0, 0.0]])
        sparse = SparseIntervalMatrix.from_dense(dense)
        # (0,1) has nonzero endpoints; (1,0) has upper 3; (0,0) and (1,1) drop.
        assert sparse.nnz == 2
        assert sparse.to_dense() == dense or sparse.to_dense().allclose(dense, atol=0)

    def test_misordered_stored_entry_raises(self):
        lower = sp.csr_array(np.array([[5.0, 0.0]]))
        upper = sp.csr_array(np.array([[1.0, 0.0]]))
        with pytest.raises(IntervalError, match="lower > upper"):
            SparseIntervalMatrix(lower, upper)
        unchecked = SparseIntervalMatrix(lower, upper, check=False)
        assert not unchecked.is_valid()

    def test_nan_raises(self):
        lower = sp.csr_array(np.array([[np.nan, 0.0]]))
        with pytest.raises(IntervalError, match="NaN"):
            SparseIntervalMatrix(lower, sp.csr_array(np.array([[1.0, 0.0]])))

    def test_shape_mismatch_raises(self):
        with pytest.raises(IntervalError, match="shape mismatch"):
            SparseIntervalMatrix(sp.csr_array(np.zeros((2, 2))),
                                 sp.csr_array(np.zeros((2, 3))))

    def test_mismatched_patterns_are_unified(self):
        lower = sp.csr_array(np.array([[1.0, 0.0], [0.0, 0.0]]))
        upper = sp.csr_array(np.array([[2.0, 3.0], [0.0, 0.0]]))
        matrix = SparseIntervalMatrix(lower, upper)
        # The union pattern stores (0,0) and (0,1); (0,1)'s lower is an
        # explicit 0 <= 3, a valid interval.
        assert matrix.nnz == 2
        dense = matrix.to_dense()
        np.testing.assert_array_equal(dense.lower, [[1.0, 0.0], [0.0, 0.0]])
        np.testing.assert_array_equal(dense.upper, [[2.0, 3.0], [0.0, 0.0]])

    def test_pattern_union_surfaces_hidden_misordering(self):
        # An entry present only in `upper` with a negative value implies
        # lower(=0) > upper there: the union must expose it to validation.
        lower = sp.csr_array(np.array([[1.0, 0.0]]))
        upper = sp.csr_array(np.array([[2.0, -3.0]]))
        with pytest.raises(IntervalError, match="lower > upper"):
            SparseIntervalMatrix(lower, upper)

    def test_pattern_is_physically_shared(self):
        matrix = SparseIntervalMatrix.from_dense(
            integer_interval_matrix(np.random.default_rng(1), 6, 4, 0.5))
        assert matrix.lower.indices is matrix.upper.indices
        assert matrix.lower.indptr is matrix.upper.indptr

    def test_from_coo_sums_duplicates_per_endpoint(self):
        matrix = SparseIntervalMatrix.from_coo(
            [0, 0], [1, 1], [1.0, 2.0], [3.0, 4.0], shape=(2, 3))
        assert matrix.nnz == 1
        assert matrix.to_dense().lower[0, 1] == 3.0
        assert matrix.to_dense().upper[0, 1] == 7.0

    def test_transpose_midpoint_radius_span(self):
        dense = integer_interval_matrix(np.random.default_rng(2), 7, 4, 0.5)
        sparse = SparseIntervalMatrix.from_dense(dense)
        assert sparse.T.shape == (4, 7)
        np.testing.assert_array_equal(sparse.T.to_dense().lower, dense.lower.T)
        np.testing.assert_array_equal(sparse.midpoint().toarray(), dense.midpoint())
        np.testing.assert_array_equal(sparse.radius().toarray(), dense.radius())
        np.testing.assert_array_equal(sparse.span().toarray(), dense.span())
        assert sparse.max_span() == dense.max_span()
        assert sparse.mean_span() == pytest.approx(dense.mean_span())

    def test_storage_accounting_beats_dense(self):
        dense = integer_interval_matrix(np.random.default_rng(3), 50, 40, 0.05)
        sparse = SparseIntervalMatrix.from_dense(dense)
        dense_bytes = dense.lower.nbytes + dense.upper.nbytes
        assert sparse.endpoint_nbytes() < dense_bytes / 5

    def test_coercion_helpers(self):
        dense = integer_interval_matrix(np.random.default_rng(4), 3, 3, 0.5)
        sparse = SparseIntervalMatrix.from_dense(dense)
        assert as_interval_operand(sparse) is sparse
        assert isinstance(as_interval_operand(dense), IntervalMatrix)
        assert isinstance(as_interval_operand(np.eye(3)), IntervalMatrix)
        assert is_sparse_interval(sparse) and not is_sparse_interval(dense)
        assert SparseIntervalMatrix.coerce(sparse) is sparse
        assert SparseIntervalMatrix.coerce(dense).nnz == sparse.nnz

    def test_rows_slice_and_row_pattern(self):
        dense = integer_interval_matrix(np.random.default_rng(5), 6, 5, 0.5)
        sparse = SparseIntervalMatrix.from_dense(dense)
        subset = sparse.rows([1, 3])
        assert subset.shape == (2, 5)
        np.testing.assert_array_equal(subset.to_dense().lower, dense.lower[[1, 3]])
        observed = sparse.row_pattern(1)
        expected = np.flatnonzero((dense.lower[1] != 0) | (dense.upper[1] != 0))
        np.testing.assert_array_equal(np.sort(observed), expected)


class TestSparseDenseParity:
    """The parity suite: sparse execution must equal dense execution exactly."""

    @settings(**COMMON_SETTINGS)
    @given(pair_params, pair_params, st.sampled_from(SPARSE_KERNELS))
    def test_sparse_times_sparse_bit_for_bit(self, left, right, kernel):
        a_dense, a_sparse = _pair(left)
        rows, cols, seed, density = right
        b_dense = integer_interval_matrix(
            np.random.default_rng(seed + 1), a_dense.shape[1], cols, density)
        b_sparse = SparseIntervalMatrix.from_dense(b_dense)
        expected = interval_matmul(a_dense, b_dense, kernel=kernel)
        result = interval_matmul(a_sparse, b_sparse, kernel=kernel)
        assert is_sparse_interval(result)
        assert _bytes_equal(result, expected)

    @settings(**COMMON_SETTINGS)
    @given(pair_params, st.sampled_from(SPARSE_KERNELS))
    def test_sparse_times_dense_bit_for_bit(self, params, kernel):
        a_dense, a_sparse = _pair(params)
        rng = np.random.default_rng(params[2] + 7)
        b = IntervalMatrix.from_scalar(
            rng.integers(-5, 6, (a_dense.shape[1], 3)).astype(float))
        expected = interval_matmul(a_dense, b, kernel=kernel)
        result = interval_matmul(a_sparse, b, kernel=kernel)
        assert isinstance(result, IntervalMatrix)
        assert _bytes_equal(result, expected)

    @settings(**COMMON_SETTINGS)
    @given(pair_params, st.sampled_from(SPARSE_KERNELS))
    def test_gram_bit_for_bit(self, params, kernel):
        dense, sparse = _pair(params)
        expected = interval_gram(dense, kernel=kernel)
        result = interval_gram(sparse, kernel=kernel)
        assert isinstance(result, IntervalMatrix)
        assert _bytes_equal(result, expected)

    def test_exact_kernel_refuses_sparse_operands(self):
        _, sparse = _pair((4, 4, 0, 0.5))
        with pytest.raises(IntervalError, match="no sparse execution"):
            interval_matmul(sparse, sparse, kernel="exact")
        with pytest.raises(IntervalError, match="no sparse execution"):
            interval_gram(sparse, kernel="exact")

    def test_sparse_capability_metadata(self):
        by_key = {info.key: info for info in map(get_kernel, available_kernels())}
        assert by_key["endpoint4"].sparse
        assert by_key["rump"].sparse
        assert not by_key["exact"].sparse


class TestBlockedGram:
    @settings(**COMMON_SETTINGS)
    @given(pair_params, st.sampled_from(SPARSE_KERNELS),
           st.integers(1, 9))
    def test_blocked_equals_unblocked_bit_for_bit_on_integer_data(
            self, params, kernel, block_rows):
        dense, _ = _pair(params)
        reference = interval_gram(dense, kernel=kernel)
        blocked = interval_gram(dense, kernel=kernel, block_rows=block_rows)
        assert _bytes_equal(blocked, reference)

    @pytest.mark.parametrize("kernel", SPARSE_KERNELS)
    @pytest.mark.parametrize("block_rows", [1, 3, 16, 37, 1000])
    def test_blocked_matches_unblocked_on_floats(self, kernel, block_rows):
        matrix = random_interval_matrix((37, 9), interval_density=1.0,
                                        interval_intensity=1.0, rng=11)
        reference = interval_gram(matrix, kernel=kernel)
        blocked = interval_gram(matrix, kernel=kernel, block_rows=block_rows)
        assert blocked.allclose(reference, atol=1e-10, rtol=1e-12)

    def test_unblocked_gram_is_byte_identical_to_matmul(self):
        matrix = random_interval_matrix((20, 8), interval_density=1.0,
                                        interval_intensity=0.8, rng=3)
        for kernel in available_kernels():
            product = interval_matmul(matrix.T, matrix, kernel=kernel)
            gram = interval_gram(matrix, kernel=kernel)
            assert gram.lower.tobytes() == product.lower.tobytes()
            assert gram.upper.tobytes() == product.upper.tobytes()

    def test_exact_kernel_rejects_block_rows(self):
        matrix = random_interval_matrix((6, 4), interval_density=1.0,
                                        interval_intensity=0.5, rng=1)
        with pytest.raises(IntervalError, match="no blocked gram"):
            interval_gram(matrix, kernel="exact", block_rows=2)

    def test_invalid_block_rows_raises(self):
        matrix = random_interval_matrix((6, 4), interval_density=1.0,
                                        interval_intensity=0.5, rng=1)
        with pytest.raises(IntervalError, match="block_rows"):
            interval_gram(matrix, block_rows=0)


class TestSparseISVD:
    @pytest.mark.parametrize("method", ["isvd2", "isvd3", "isvd4"])
    def test_gram_methods_accept_sparse_and_match_dense(self, method):
        dense = integer_interval_matrix(np.random.default_rng(8), 20, 8, 0.5)
        sparse = SparseIntervalMatrix.from_dense(dense)
        reference = isvd(dense, 4, method=method, target="a")
        result = isvd(sparse, 4, method=method, target="a")
        # The gram step is bitwise identical on integer data; the U recovery
        # multiplies by non-integer inverses, so sparse BLAS order may differ
        # in the last ulp.
        assert result.u.allclose(reference.u, atol=1e-9, rtol=1e-9)
        assert result.v.allclose(reference.v, atol=1e-9, rtol=1e-9)

    @pytest.mark.parametrize("method,target", [("isvd0", "c"), ("isvd1", "b")])
    def test_dense_only_methods_densify_sparse_input(self, method, target):
        dense = integer_interval_matrix(np.random.default_rng(9), 12, 6, 0.5)
        sparse = SparseIntervalMatrix.from_dense(dense)
        reference = isvd(dense, 3, method=method, target=target)
        result = isvd(sparse, 3, method=method, target=target)
        assert np.asarray(result.u_scalar()).tobytes() == \
            np.asarray(reference.u_scalar()).tobytes()

    def test_gram_block_rows_threads_through_isvd(self):
        dense = integer_interval_matrix(np.random.default_rng(10), 25, 7, 0.6)
        reference = isvd(dense, 3, method="isvd4", target="a")
        blocked = isvd(dense, 3, method="isvd4", target="a", gram_block_rows=6)
        assert blocked.u.allclose(reference.u, atol=0.0, rtol=0.0)

    def test_registry_densifies_for_non_sparse_aware_methods(self):
        from repro.core import registry

        # Build a small non-negative matrix for NMF.
        rng = np.random.default_rng(11)
        base = np.where(rng.random((10, 6)) < 0.5, rng.integers(1, 5, (10, 6)), 0)
        dense = IntervalMatrix.from_scalar(base.astype(float))
        sparse = SparseIntervalMatrix.from_dense(dense)
        info = registry.get("nmf")
        assert not info.sparse_aware
        result = info.fit(sparse, 2, seed=0)
        reference = info.fit(dense, 2, seed=0)
        assert np.allclose(np.asarray(result.u), np.asarray(reference.u))

    def test_registry_marks_gram_family_sparse_aware(self):
        from repro.core import registry

        aware = {info.key for info in registry.infos() if info.sparse_aware}
        assert aware == {"isvd2", "isvd3", "isvd4"}


class TestEngineAndIO:
    def test_fingerprint_stable_and_representation_sensitive(self):
        from repro.io import interval_fingerprint

        dense = integer_interval_matrix(np.random.default_rng(12), 8, 5, 0.5)
        sparse = SparseIntervalMatrix.from_dense(dense)
        assert interval_fingerprint(sparse) == interval_fingerprint(sparse.copy())
        assert interval_fingerprint(sparse) != interval_fingerprint(dense)
        other = SparseIntervalMatrix.from_dense(
            integer_interval_matrix(np.random.default_rng(13), 8, 5, 0.5))
        assert interval_fingerprint(sparse) != interval_fingerprint(other)

    def test_npz_roundtrip_preserves_sparse_representation(self, tmp_path):
        from repro.io import load_interval_npz, save_interval_npz

        sparse = SparseIntervalMatrix.from_dense(
            integer_interval_matrix(np.random.default_rng(14), 9, 6, 0.4))
        path = tmp_path / "sparse.npz"
        save_interval_npz(sparse, path)
        loaded = load_interval_npz(path)
        assert is_sparse_interval(loaded)
        assert loaded.nnz == sparse.nnz
        assert _bytes_equal(loaded, sparse.to_dense())

    def test_dense_npz_still_loads_dense(self, tmp_path):
        from repro.io import load_interval_npz, save_interval_npz

        dense = integer_interval_matrix(np.random.default_rng(15), 4, 4, 0.5)
        path = tmp_path / "dense.npz"
        save_interval_npz(dense, path)
        assert isinstance(load_interval_npz(path), IntervalMatrix)

    def test_engine_caches_sparse_decompositions(self, tmp_path):
        from repro.experiments.engine import ExperimentEngine

        sparse = SparseIntervalMatrix.from_dense(
            integer_interval_matrix(np.random.default_rng(16), 15, 6, 0.5))
        engine = ExperimentEngine(cache_dir=tmp_path)
        first, hit = engine.decompose(sparse, "isvd4", 3, target="b")
        assert not hit
        second, hit = engine.decompose(sparse, "isvd4", 3, target="b")
        assert hit
        assert np.allclose(second.u_scalar(), first.u_scalar())
        # The dense equivalent must not be served the sparse cache entry.
        _, hit = engine.decompose(sparse.to_dense(), "isvd4", 3, target="b")
        assert not hit


class TestSparseFoldIn:
    def _model(self, seed=17, n=14, m=8, rank=3):
        dense = integer_interval_matrix(np.random.default_rng(seed), n, m, 0.7)
        return isvd(dense, rank, method="isvd3", target="b"), dense

    def test_fully_observed_sparse_row_matches_dense_fold_in(self):
        from repro.serve.foldin import FoldInProjector

        decomposition, dense = self._model()
        projector = FoldInProjector(decomposition)
        row = dense.row(0)
        full = IntervalMatrix(row.lower[np.newaxis, :] + 1.0,
                              row.upper[np.newaxis, :] + 2.0)
        sparse_rows = SparseIntervalMatrix.from_dense(full)
        assert sparse_rows.nnz == full.size  # every column observed
        dense_latent = projector.fold_in(full)
        sparse_latent = projector.fold_in(sparse_rows)
        # Same least-squares problem (all columns observed), solved via pinv
        # vs per-row lstsq: equal to numerical tolerance.
        np.testing.assert_allclose(sparse_latent, dense_latent, atol=1e-8)
        interval_dense = projector.fold_in_interval(full)
        interval_sparse = projector.fold_in_interval(sparse_rows)
        assert interval_sparse.allclose(interval_dense, atol=1e-8)

    def test_partially_observed_row_recovers_model_latent(self):
        from repro.serve.foldin import FoldInProjector

        decomposition, _ = self._model()
        projector = FoldInProjector(decomposition)
        latent_true = decomposition.u_scalar()[2][np.newaxis, :]
        scores = latent_true @ projector.item_map  # (1, m)
        observed = np.array([0, 2, 3, 5, 7])  # > rank columns
        rows = np.zeros(1, dtype=int).repeat(observed.size)
        sparse_row = SparseIntervalMatrix.from_coo(
            rows, observed, scores[0, observed], scores[0, observed],
            shape=(1, projector.n_items))
        folded = projector.fold_in(sparse_row)
        np.testing.assert_allclose(folded, latent_true, atol=1e-8)

    def test_unobserved_columns_do_not_pull_toward_zero(self):
        from repro.serve.foldin import FoldInProjector

        decomposition, _ = self._model()
        projector = FoldInProjector(decomposition)
        latent_true = decomposition.u_scalar()[1][np.newaxis, :]
        scores = latent_true @ projector.item_map
        observed = np.array([1, 2, 4, 6])
        # Dense row with zeros at unobserved columns: the zeros act as
        # observations and bias the projection; the sparse row must not.
        dense_row = np.zeros((1, projector.n_items))
        dense_row[0, observed] = scores[0, observed]
        sparse_row = SparseIntervalMatrix.from_coo(
            np.zeros(observed.size, dtype=int), observed,
            scores[0, observed], scores[0, observed],
            shape=(1, projector.n_items))
        sparse_latent = projector.fold_in(sparse_row)
        np.testing.assert_allclose(sparse_latent, latent_true, atol=1e-8)
        dense_latent = projector.fold_in(dense_row)
        assert not np.allclose(dense_latent, latent_true, atol=1e-4)

    def test_empty_row_folds_to_zero_latent(self):
        from repro.serve.foldin import FoldInProjector

        decomposition, _ = self._model()
        projector = FoldInProjector(decomposition)
        empty = SparseIntervalMatrix(
            sp.csr_array((2, projector.n_items), dtype=float),
            sp.csr_array((2, projector.n_items), dtype=float))
        np.testing.assert_array_equal(projector.fold_in(empty),
                                      np.zeros((2, decomposition.rank)))

    def test_wrong_width_sparse_rows_raise(self):
        from repro.serve.foldin import FoldInProjector

        decomposition, _ = self._model()
        projector = FoldInProjector(decomposition)
        bad = SparseIntervalMatrix(
            sp.csr_array((1, projector.n_items + 1), dtype=float),
            sp.csr_array((1, projector.n_items + 1), dtype=float))
        with pytest.raises(ValueError, match="width"):
            projector.fold_in(bad)

    def test_query_engine_answers_sparse_queries(self):
        from repro.serve.query import QueryEngine

        decomposition, dense = self._model()
        engine = QueryEngine(decomposition)
        observed = np.array([0, 1, 3, 4, 6])
        sparse_row = SparseIntervalMatrix.from_coo(
            np.zeros(observed.size, dtype=int), observed,
            np.full(observed.size, 2.0), np.full(observed.size, 4.0),
            shape=(1, engine.n_items))
        top = engine.top_k_items(sparse_row, k=3)
        assert top.indices.shape == (1, 3)
        neighbors = engine.nearest_neighbors(sparse_row, k=2)
        assert neighbors.indices.shape == (1, 2)
        scores = engine.reconstruct_rows(sparse_row)
        assert scores.shape == (1, engine.n_items)
        assert np.isfinite(scores).all()


class TestSparseRatings:
    def test_sparse_rating_matrix_matches_dense_construction(self):
        from repro.datasets.ratings import (
            make_ratings_dataset,
            rating_interval_matrix,
            sparse_rating_interval_matrix,
        )

        dataset = make_ratings_dataset(preset="movielens", n_users=30, n_items=40,
                                       seed=5)
        dense = rating_interval_matrix(dataset, alpha=0.5)
        sparse = sparse_rating_interval_matrix(dataset, alpha=0.5)
        assert _bytes_equal(sparse, dense)
        assert sparse.nnz == int(dataset.observed_mask.sum())

    def test_direct_generator_shape_density_and_validity(self):
        from repro.datasets.ratings import make_sparse_rating_matrix

        matrix = make_sparse_rating_matrix(preset=None, n_users=500, n_items=80,
                                           density=0.05, seed=3)
        assert matrix.shape == (500, 80)
        assert matrix.is_valid()
        # Cells are sampled without replacement: the count is exact.
        assert matrix.nnz == round(500 * 80 * 0.05)
        stars = matrix.midpoint().data
        assert stars.min() >= 1.0 and stars.max() <= 5.0

    @pytest.mark.parametrize("density", [0.5, 0.8, 1.0])
    def test_direct_generator_exact_at_high_densities(self, density):
        from repro.datasets.ratings import make_sparse_rating_matrix

        matrix = make_sparse_rating_matrix(preset=None, n_users=40, n_items=25,
                                           density=density, seed=2)
        assert matrix.nnz == round(40 * 25 * density)
        assert matrix.is_valid()

    def test_direct_generator_is_seed_deterministic(self):
        from repro.datasets.ratings import make_sparse_rating_matrix
        from repro.io import interval_fingerprint

        a = make_sparse_rating_matrix(preset="demo", seed=9)
        b = make_sparse_rating_matrix(preset="demo", seed=9)
        c = make_sparse_rating_matrix(preset="demo", seed=10)
        assert interval_fingerprint(a) == interval_fingerprint(b)
        assert interval_fingerprint(a) != interval_fingerprint(c)

    def test_scale_presets_exist_and_resolve(self):
        from repro.datasets.ratings import SPARSE_SCALE_PRESETS, make_sparse_rating_matrix

        assert set(SPARSE_SCALE_PRESETS) == {"demo", "webscale"}
        webscale = SPARSE_SCALE_PRESETS["webscale"]
        assert (webscale.n_users, webscale.n_items) == (100_000, 2_000)
        assert webscale.density == 0.01
        with pytest.raises(ValueError, match="unknown preset"):
            make_sparse_rating_matrix(preset="netflix")

    def test_generator_validates_geometry(self):
        from repro.datasets.ratings import make_sparse_rating_matrix

        with pytest.raises(ValueError, match="density"):
            make_sparse_rating_matrix(preset=None, n_users=10, n_items=10,
                                      density=0.0)
        with pytest.raises(ValueError, match="n_users"):
            make_sparse_rating_matrix(preset=None, n_users=0, n_items=10,
                                      density=0.5)
        with pytest.raises(ValueError, match="alpha"):
            make_sparse_rating_matrix(preset="demo", alpha=-1.0)

    def test_decomposable_end_to_end(self):
        from repro.datasets.ratings import make_sparse_rating_matrix

        matrix = make_sparse_rating_matrix(preset=None, n_users=120, n_items=30,
                                           density=0.2, seed=1)
        decomposition = isvd(matrix, 5, method="isvd4", target="b")
        assert decomposition.rank == 5
        assert decomposition.shape == (120, 30)


class TestSparseCLI:
    def test_generate_ratings_then_decompose_sparse(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import load_interval_npz

        path = tmp_path / "ratings.npz"
        assert main(["generate", str(path), "--kind", "ratings",
                     "--rows", "80", "--cols", "25", "--density", "0.3",
                     "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "sparse ratings interval matrix" in out
        assert is_sparse_interval(load_interval_npz(path))

        assert main(["decompose", "--npz", str(path), "--method", "isvd4",
                     "--rank", "4", "--sparse"]) == 0
        out = capsys.readouterr().out
        assert "stored cells" in out
        assert "H-mean reconstruction accuracy" in out

    def test_generate_ratings_requires_npz(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit, match="npz"):
            main(["generate", str(tmp_path / "x.csv"), "--kind", "ratings"])

    def test_decompose_sparse_flag_converts_dense_input(self, tmp_path, capsys):
        from repro.cli import main
        from repro.io import save_interval_npz

        dense = integer_interval_matrix(np.random.default_rng(20), 15, 8, 0.4)
        path = tmp_path / "dense.npz"
        save_interval_npz(dense, path)
        assert main(["decompose", "--npz", str(path), "--method", "isvd3",
                     "--rank", "3", "--sparse"]) == 0
        assert "density" in capsys.readouterr().out
